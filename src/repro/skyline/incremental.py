"""Incremental skyline maintenance under point inserts and deletes.

The static pipeline recomputes the whole skyline whenever the dataset
changes.  This module maintains it instead, on the same memory-bounded
dominance kernels (:mod:`repro.skyline.kernels`), so a
:class:`~repro.core.session.DatasetSession` can absorb a stream of updates
without paying a full ``O(n · u)`` recompute per batch:

* **insert** — one :func:`~repro.skyline.kernels.dominated_mask` pass of the
  new points against the current skyline screens out dominated arrivals
  (dominance is transitive, so screening against the skyline alone is
  exact); an intra-batch pass resolves dominance among the survivors; a
  final pass demotes current skyline points dominated by a surviving
  arrival into the dominated buffer.
* **delete** — removing a *dominated* point never changes anyone else's
  status, so only deleted skyline points trigger work: the points they used
  to shadow (the members of the dominated buffer they dominate) are the
  only possible promotions.  One kernel pass computes that shadow, a second
  screens it against the surviving skyline, and an intra-shadow pass
  resolves chains (``s ≻ y ≻ x``: deleting ``s`` promotes ``y`` but not
  ``x``).  The cost is proportional to the buffer size times the number of
  *deleted skyline* points — localized, instead of the full recompute.

The "dominated buffer" is the complement partition: every point is either a
skyline point or buffered, and the functions below move points between the
two sides exactly.  All results are set-identical to a from-scratch
recompute (the dynamic-parity fuzz tests pin this bit for bit on the sorted
index arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro._types import IndexArray
from repro.errors import DimensionMismatchError, InvalidDatasetError
from repro.skyline.kernels import dominated_mask


@dataclass(frozen=True)
class SkylineDelta:
    """The exact skyline diff produced by one update batch.

    Attributes
    ----------
    is_skyline:
        Boolean membership mask over the *new* dataset (post-delete,
        post-insert row order).
    added:
        New-dataset positions that joined the skyline (promotions out of the
        dominated buffer plus surviving arrivals), sorted.
    removed_old:
        Old-dataset positions that left the skyline (deleted skyline points
        plus points demoted by an arrival), sorted.  Expressed in *old*
        coordinates because downstream index arenas key their hyperplane
        slots by the positions the points had when they were indexed.
    """

    is_skyline: np.ndarray
    added: IndexArray
    removed_old: IndexArray


def remap_after_delete(num_points: int, deletes: np.ndarray) -> np.ndarray:
    """Old-position → new-position map of a row deletion (``-1`` = deleted).

    Rows keep their relative order; the map is what every index-carrying
    artifact needs to renumber itself after ``np.delete(data, deletes)``.
    """
    keep = np.ones(num_points, dtype=bool)
    keep[deletes] = False
    remap = np.cumsum(keep, dtype=np.intp) - 1
    remap[~keep] = -1
    return remap


def validate_deletes(num_points: int, deletes) -> np.ndarray:
    """Normalise delete positions: unique, in-range, sorted ``intp`` array."""
    positions = np.asarray(deletes if deletes is not None else [], dtype=np.intp)
    if positions.ndim != 1:
        raise InvalidDatasetError("delete positions must be a 1-D integer array")
    if positions.size == 0:
        return positions
    if positions.min() < 0 or positions.max() >= num_points:
        raise InvalidDatasetError(
            f"delete positions must lie in [0, {num_points}), got "
            f"[{positions.min()}, {positions.max()}]"
        )
    unique = np.unique(positions)
    if unique.size != positions.size:
        raise InvalidDatasetError("delete positions must be unique")
    return unique


def compose_updated_data(
    data: np.ndarray, deletes: np.ndarray, inserts: Optional[np.ndarray]
) -> np.ndarray:
    """``np.vstack([np.delete(data, deletes, axis=0), inserts])``, minimally.

    The single home of the composition's aliasing rules: ``np.delete``
    already produces a fresh array (only the zero-delete alias of ``data``
    needs a defensive copy), and an empty prefix may carry a different —
    even zero — column count, in which case the arrivals alone define the
    result.  Used by both :func:`apply_updates` and the session's
    invalidation path so the two can never diverge.
    """
    kept = np.delete(data, deletes, axis=0) if deletes.size else data
    if inserts is None or inserts.shape[0] == 0:
        return kept.copy() if deletes.size == 0 else kept
    if kept.shape[0] == 0:
        return inserts.copy()
    return np.vstack([kept, inserts])


def delete_update(
    data: np.ndarray,
    is_skyline: np.ndarray,
    deletes: np.ndarray,
    memory_cap: Optional[int] = None,
) -> Tuple[np.ndarray, IndexArray]:
    """Skyline membership of the kept rows after deleting ``deletes``.

    Parameters
    ----------
    data, is_skyline:
        The *old* dataset and its skyline membership mask.
    deletes:
        Sorted unique old-dataset positions to remove.

    Returns
    -------
    (kept_is_skyline, promoted_kept_positions):
        Membership mask over the kept rows (old order, deleted rows
        dropped), and the kept-row positions that were promoted out of the
        dominated buffer.
    """
    keep = np.ones(data.shape[0], dtype=bool)
    keep[deletes] = False
    kept_sky = is_skyline[keep].copy()
    deleted_sky = data[deletes][is_skyline[deletes]]
    if deleted_sky.shape[0] == 0:
        # Only buffered points left: nobody's dominators changed.
        return kept_sky, np.empty(0, dtype=np.intp)

    kept_data = data[keep]
    buffer_positions = np.flatnonzero(~kept_sky)
    if buffer_positions.size == 0:
        return kept_sky, np.empty(0, dtype=np.intp)
    buffer_points = kept_data[buffer_positions]

    # The dominance shadow: buffered points one of the deleted skyline
    # points used to dominate.  Only they can possibly be exposed.
    shadow = dominated_mask(buffer_points, deleted_sky, memory_cap=memory_cap)
    candidates = buffer_positions[shadow]
    if candidates.size == 0:
        return kept_sky, candidates
    candidate_points = kept_data[candidates]

    # Still shadowed by a surviving skyline point?  (Transitivity makes the
    # skyline screen sufficient for non-shadow dominators; chains inside the
    # shadow are resolved by the intra pass below.)
    survivors_mask = ~dominated_mask(
        candidate_points, kept_data[kept_sky], memory_cap=memory_cap
    )
    candidates = candidates[survivors_mask]
    candidate_points = candidate_points[survivors_mask]
    if candidates.size > 1:
        intra = dominated_mask(
            candidate_points, candidate_points, memory_cap=memory_cap
        )
        candidates = candidates[~intra]
    kept_sky[candidates] = True
    return kept_sky, candidates


def insert_update(
    data: np.ndarray,
    is_skyline: np.ndarray,
    num_inserted: int,
    memory_cap: Optional[int] = None,
) -> Tuple[np.ndarray, IndexArray, IndexArray]:
    """Skyline membership after appending ``num_inserted`` rows to ``data``.

    ``data`` already contains the arrivals as its last ``num_inserted``
    rows; ``is_skyline`` is the membership mask of the *prefix* (arrival
    entries may be anything — they are recomputed here).

    Returns
    -------
    (is_skyline, added_positions, demoted_positions):
        The updated membership mask over all of ``data``, the appended
        positions that joined the skyline, and the prefix positions demoted
        by an arrival.
    """
    n = data.shape[0]
    base = n - num_inserted
    out = np.zeros(n, dtype=bool)
    out[:base] = is_skyline[:base]
    if num_inserted == 0:
        return out, np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)

    new_points = data[base:]
    old_sky_positions = np.flatnonzero(out[:base])
    # Screening against the current skyline is exact: any old dominator of
    # an arrival is itself dominated by (or is) an old skyline point.
    screened = dominated_mask(
        new_points, data[old_sky_positions], memory_cap=memory_cap
    )
    surviving = np.flatnonzero(~screened)
    if surviving.size > 1:
        intra = dominated_mask(
            new_points[surviving], new_points[surviving], memory_cap=memory_cap
        )
        surviving = surviving[~intra]
    added = base + surviving
    out[added] = True

    demoted = np.empty(0, dtype=np.intp)
    if surviving.size and old_sky_positions.size:
        demoted_mask = dominated_mask(
            data[old_sky_positions], data[added], memory_cap=memory_cap
        )
        demoted = old_sky_positions[demoted_mask]
        out[demoted] = False
    return out, added, demoted


def membership_delta(
    num_old: int,
    deletes: np.ndarray,
    old_is_skyline: np.ndarray,
    new_is_skyline: np.ndarray,
) -> SkylineDelta:
    """Diff old-vs-new skyline membership into a :class:`SkylineDelta`.

    ``old_is_skyline`` is the membership mask over the *old* dataset,
    ``new_is_skyline`` over the *new* one (old rows minus the sorted unique
    ``deletes``, arrivals appended), exactly the frame
    :func:`compose_updated_data` produces.  The diff is membership-only —
    it does not care *how* ``new_is_skyline`` was obtained, which is what
    lets a session that recomputed its skyline from scratch still patch its
    cached indexes with the (usually small) insert/delete sets instead of
    dropping them all.
    """
    kept_old_positions = np.delete(np.arange(num_old, dtype=np.intp), deletes)
    was_sky_new_coords = np.zeros(new_is_skyline.shape[0], dtype=bool)
    was_sky_new_coords[: kept_old_positions.size] = old_is_skyline[
        kept_old_positions
    ]
    removed_old = np.concatenate(
        [
            deletes[old_is_skyline[deletes]],  # deleted skyline members
            kept_old_positions[  # kept members that lost membership
                was_sky_new_coords[: kept_old_positions.size]
                & ~new_is_skyline[: kept_old_positions.size]
            ],
        ]
    )
    promoted_or_new = np.flatnonzero(new_is_skyline)
    # ``added``: new positions that were NOT skyline before the batch —
    # promotions (kept rows whose old membership was False) and arrivals.
    added = promoted_or_new[~was_sky_new_coords[promoted_or_new]]
    return SkylineDelta(
        is_skyline=new_is_skyline,
        added=np.sort(added).astype(np.intp),
        removed_old=np.sort(removed_old).astype(np.intp),
    )


def apply_updates(
    data: np.ndarray,
    skyline_idx: IndexArray,
    inserts: Optional[np.ndarray],
    deletes: Optional[np.ndarray],
    memory_cap: Optional[int] = None,
) -> Tuple[np.ndarray, SkylineDelta]:
    """Apply one mixed update batch and return ``(new_data, delta)``.

    Deletes are applied first (promotions from the dominated buffer), then
    the inserts are appended (survivor screening plus demotions), matching
    ``np.vstack([np.delete(data, deletes, axis=0), inserts])`` row order.

    ``skyline_idx`` is the current skyline of ``data``;
    :attr:`SkylineDelta.removed_old` reports both deleted and demoted
    skyline members in *old* coordinates so index arenas can retire the
    matching hyperplane slots before renumbering.
    """
    n = data.shape[0]
    deletes = validate_deletes(n, deletes)
    if inserts is None:
        inserts = np.empty((0, data.shape[1]), dtype=float)
    else:
        inserts = np.asarray(inserts, dtype=float)
        if inserts.ndim != 2:
            raise InvalidDatasetError("inserts must be a 2-D (b, d) array")
        if n and inserts.shape[0] and inserts.shape[1] != data.shape[1]:
            raise DimensionMismatchError(
                f"inserted points have d={inserts.shape[1]}, "
                f"dataset has d={data.shape[1]}"
            )

    is_sky = np.zeros(n, dtype=bool)
    is_sky[np.asarray(skyline_idx, dtype=np.intp)] = True

    kept_sky, _ = delete_update(data, is_sky, deletes, memory_cap=memory_cap)
    new_data = compose_updated_data(data, deletes, inserts)

    partial = np.zeros(new_data.shape[0], dtype=bool)
    partial[: kept_sky.size] = kept_sky
    final_sky, _, _ = insert_update(
        new_data, partial, inserts.shape[0], memory_cap=memory_cap
    )

    # Diff against the OLD membership, in the coordinates each side needs.
    # Transient members — promoted by the delete step, demoted again by an
    # arrival in the same batch — appear in neither list: ``removed_old``
    # and ``added`` are pure before/after membership diffs.
    return new_data, membership_delta(n, deletes, is_sky, final_sky)
