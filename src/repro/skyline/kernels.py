"""Memory-bounded broadcast dominance kernels.

Every skyline and eclipse hot path in this repository reduces to one
primitive: *which of these candidate rows is Pareto-dominated by one of
those dominator rows?*  (Minimisation semantics; ``p`` dominates ``q`` when
``p <= q`` everywhere and ``p < q`` somewhere.)  The seed implementations
answered it one candidate at a time from Python; the kernels here answer it
for a whole block of candidates with a single ``(B, k, d)`` broadcast,
chunked so the boolean scratch never exceeds a configurable memory cap
(see :mod:`repro.perf.blocking`).

Kernels provided:

* :func:`dominated_mask` — the core primitive, with candidate- and
  dominator-axis chunking plus early exit once every candidate in a block
  is dominated.
* :func:`dominates_matrix` — the full ``(m, k)`` pairwise dominance matrix,
  chunked over candidate rows (used by
  :func:`repro.core.dominance.eclipse_dominance_matrix`).
* :func:`block_sfs_indices` — block sort-filter-skyline: presort by a
  monotone key, then screen candidates in blocks against the confirmed
  skyline matrix, resolving intra-block dominance with the same kernel.
* :func:`monotone_sort_order` — the shared presort (key sum with a
  lexicographic tie-break) that makes the one-directional screening of
  block-SFS and the baseline's prefix filter valid.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._types import IndexArray
from repro.perf.blocking import (
    DEFAULT_BLOCK_SIZE,
    GrowableBuffer,
    iter_blocks,
    resolve_block_size,
)
from repro.perf.executor import (
    ShmKernel,
    map_blocks,
    note_float32,
    parallel_block_size,
    resolve_dtype,
    resolve_threads,
    split_memory_cap,
)


#: Dominator rows compared against a candidate block per kernel step.  Kept
#: deliberately small: dominators are usually supplied strongest-first (sum
#: order), so the first chunk eliminates the bulk of the candidates and the
#: compression step drops them before the remaining chunks run — measured
#: 5-10x faster end-to-end than chunk sizes in the hundreds, on sorted and
#: unsorted dominator sets alike.
_DOMINATOR_CHUNK = 32

#: Upper bound on the candidate rows per kernel step.  When the dominator
#: set is small the memory cap admits very large candidate blocks; this cap
#: keeps the scratch allocation bounded without degenerating into the tiny
#: fixed blocks that made many-call overhead dominate.
_CANDIDATE_BLOCK = 16384


def _screen_block_exact(
    cand: np.ndarray,
    csums: np.ndarray,
    dominators: np.ndarray,
    dom_sums: np.ndarray,
    out: np.ndarray,
) -> None:
    """Exact float64 screen of one candidate block; writes into ``out``.

    ``out`` is a boolean view over the block's slice of the result mask —
    blocks write disjoint slices, so the screen is safe to dispatch across
    worker threads.  The arithmetic is the serial kernel's, unchanged: the
    sum-based strictness test, the rounding rescue for computed-sum ties,
    and the early-exit compression over dominator chunks.
    """
    k = dominators.shape[0]
    alive = np.arange(cand.shape[0])
    for dstart, dstop in iter_blocks(k, _DOMINATOR_CHUNK):
        dom = dominators[dstart:dstop]
        dsums = dom_sums[dstart:dstop]
        le = (dom[None, :, :] <= cand[:, None, :]).all(axis=2)
        sum_lt = dsums[None, :] < csums[:, None]
        hit = (le & sum_lt).any(axis=1)
        # Rounding rescue: a dominator that is <= everywhere but whose
        # *computed* sum ties the candidate's either equals it (no
        # domination) or strictly improves a coordinate too small to
        # register in the sum.  Decide those few pairs exactly.
        ties = le & ~sum_lt & (dsums[None, :] == csums[:, None])
        if ties.any():
            rows = np.flatnonzero(~hit & ties.any(axis=1))
            if rows.size:
                ii, jj = np.nonzero(ties[rows])
                strict = (dom[jj] < cand[rows][ii]).any(axis=1)
                if strict.any():
                    hit[rows[np.unique(ii[strict])]] = True
        if hit.any():
            out[alive[hit]] = True
            keep = ~hit
            alive = alive[keep]
            if alive.size == 0:
                break
            cand = cand[keep]
            csums = csums[keep]


def _screen_block_f32(
    cand64: np.ndarray,
    cand32: np.ndarray,
    dominators: np.ndarray,
    dom32: np.ndarray,
    dom_sums: np.ndarray,
    csums64: Optional[np.ndarray],
    out: np.ndarray,
) -> tuple:
    """Float32 screen of one candidate block with an exact fallback.

    Rounding float64 to float32 is monotone, so a *strict* float32
    inequality is certain in raw space: a dominator strictly below a
    candidate in every float32 coordinate strictly dominates it exactly.
    Only float32 **ties** are ambiguous — the two float64 values may order
    either way (or be equal).  The screen therefore decides candidates on
    strict float32 comparisons alone and re-verifies the rest — candidates
    with at least one tied-but-never-worse dominator and no certain hit —
    with the exact float64 kernel, making the result byte-identical to the
    float64 path by construction.

    Returns ``(fastpath_rows, fallback_rows)`` for the executor telemetry.
    """
    k = dom32.shape[0]
    block_rows = cand32.shape[0]
    ambiguous = np.zeros(block_rows, dtype=bool)
    alive = np.arange(block_rows)
    cand = cand32
    for dstart, dstop in iter_blocks(k, _DOMINATOR_CHUNK):
        dom = dom32[dstart:dstop]
        le = (dom[None, :, :] <= cand[:, None, :]).all(axis=2)
        lt = (dom[None, :, :] < cand[:, None, :]).all(axis=2)
        hit = lt.any(axis=1)
        near_tie = (le & ~lt).any(axis=1)
        if near_tie.any():
            ambiguous[alive[near_tie]] = True
        if hit.any():
            out[alive[hit]] = True
            keep = ~hit
            alive = alive[keep]
            if alive.size == 0:
                break
            cand = cand[keep]
    fallback = np.flatnonzero(ambiguous & ~out)
    if fallback.size:
        rows = cand64[fallback]
        csums = (
            rows.sum(axis=1) if csums64 is None else csums64[fallback]
        )
        exact = np.zeros(fallback.size, dtype=bool)
        _screen_block_exact(rows, csums, dominators, dom_sums, exact)
        out[fallback[exact]] = True
    return block_rows - int(fallback.size), int(fallback.size)


def _screen_chunk_shm(arrays, start: int, stop: int) -> None:
    """Process-backend candidate block of the exact screen (same arithmetic)."""
    _screen_block_exact(
        arrays["cand"][start:stop],
        arrays["csums"][start:stop],
        arrays["dom"],
        arrays["dsums"],
        arrays["mask"][start:stop],
    )


def _screen_chunk_f32_shm(arrays, start: int, stop: int) -> tuple:
    """Process-backend candidate block of the float32 screen."""
    csums = arrays.get("csums")
    return _screen_block_f32(
        arrays["cand"][start:stop],
        arrays["cand32"][start:stop],
        arrays["dom"],
        arrays["dom32"],
        arrays["dsums"],
        None if csums is None else csums[start:stop],
        arrays["mask"][start:stop],
    )


def dominated_mask(
    candidates: np.ndarray,
    dominators: np.ndarray,
    memory_cap: Optional[int] = None,
    cand_sums: Optional[np.ndarray] = None,
    dom_sums: Optional[np.ndarray] = None,
    threads: Optional[int] = None,
    compute_dtype: Optional[str] = None,
) -> np.ndarray:
    """Boolean mask over ``candidates``: True where some dominator dominates.

    Strict Pareto dominance under minimisation semantics.  Rows of
    ``candidates`` that also appear in ``dominators`` (duplicates, or the
    candidate itself) are never flagged: equality fails the strictness
    requirement, so the kernel is safe to call with overlapping inputs.

    The strictness test rides on the attribute sum instead of a second
    ``(B, K, d)`` broadcast: ``p`` dominates ``q`` iff ``p <= q`` everywhere
    *and* ``sum(p) < sum(q)`` — a strict coordinate forces a strictly
    smaller sum, and equal-everywhere rows have equal sums.  When floating
    point rounding collapses two mathematically different sums to the same
    value the kernel falls back to an exact elementwise check for just those
    pairs, so the result matches the definition bit for bit.

    The ``(B, K, d)`` comparison broadcast is chunked on both the candidate
    axis (``B``, bounded by the memory cap) and the dominator axis
    (:data:`_DOMINATOR_CHUNK`); candidates already known to be dominated are
    dropped from subsequent dominator chunks, which turns sum-ordered
    dominator sets into an early-exit filter.

    ``cand_sums`` / ``dom_sums`` accept precomputed row sums (callers that
    already sorted by the monotone key pass them to avoid recomputation).

    ``threads`` dispatches the candidate blocks across the shared kernel
    executor (default: the ambient :func:`repro.perf.executor.kernel_context`
    or ``REPRO_KERNEL_THREADS``; 1 takes the exact serial code path).  The
    memory cap divides across workers, and blocks write disjoint slices of
    the result, so answers are byte-identical at every thread count.

    ``compute_dtype="float32"`` opts one call into the single-precision
    fast path (see :func:`_screen_block_f32`): comparisons run in float32
    and only float32-tied rows are re-verified in exact float64, so the
    result is still byte-identical to the float64 kernel.
    """
    m, k = candidates.shape[0], dominators.shape[0]
    if m == 0 or k == 0:
        return np.zeros(m, dtype=bool)
    d = candidates.shape[1]
    count = resolve_threads(threads)
    use_f32 = (
        resolve_dtype(compute_dtype) == "float32"
        and candidates.dtype == np.float64
        and dominators.dtype == np.float64
    )
    if dom_sums is None:
        dom_sums = dominators.sum(axis=1)
    if cand_sums is None and not use_f32:
        cand_sums = candidates.sum(axis=1)

    mask = np.zeros(m, dtype=bool)
    effective_cap = memory_cap if count <= 1 else split_memory_cap(memory_cap, count)
    block = resolve_block_size(
        min(k, _DOMINATOR_CHUNK),
        d,
        memory_cap=effective_cap,
        preferred=_CANDIDATE_BLOCK,
    )
    if count > 1:
        block = parallel_block_size(m, block, count)

    # The broadcast scratch (m x k boolean comparisons over d coordinates)
    # dwarfs the wire payload, so the process-backend gate measures the
    # former: a compact candidate/dominator pair can still be worth a
    # dispatch when the comparison volume is large.
    work_hint = int(m) * int(k) * int(d)
    if use_f32:
        cand32 = candidates.astype(np.float32)
        dom32 = dominators.astype(np.float32)

        def worker(start: int, stop: int) -> tuple:
            return _screen_block_f32(
                candidates[start:stop],
                cand32[start:stop],
                dominators,
                dom32,
                dom_sums,
                None if cand_sums is None else cand_sums[start:stop],
                mask[start:stop],
            )

        inputs = {
            "cand": candidates,
            "cand32": cand32,
            "dom": dominators,
            "dom32": dom32,
            "dsums": dom_sums,
        }
        if cand_sums is not None:
            inputs["csums"] = cand_sums
        kernel = ShmKernel(
            _screen_chunk_f32_shm,
            inputs=inputs,
            outputs={"mask": mask},
            work_hint_bytes=work_hint,
        )
        counts = map_blocks(worker, m, block, threads=count, shm_kernel=kernel)
        note_float32(
            sum(c[0] for c in counts), sum(c[1] for c in counts)
        )
    else:

        def worker(start: int, stop: int) -> None:
            _screen_block_exact(
                candidates[start:stop],
                cand_sums[start:stop],
                dominators,
                dom_sums,
                mask[start:stop],
            )

        kernel = ShmKernel(
            _screen_chunk_shm,
            inputs={
                "cand": candidates,
                "csums": cand_sums,
                "dom": dominators,
                "dsums": dom_sums,
            },
            outputs={"mask": mask},
            work_hint_bytes=work_hint,
        )
        map_blocks(worker, m, block, threads=count, shm_kernel=kernel)
    return mask


def _dominates_chunk_shm(arrays, start: int, stop: int) -> None:
    """Process-backend row chunk of :func:`dominates_matrix` (same split)."""
    chunk = arrays["rows"][start:stop, None, :]
    others = arrays["others"]
    le = (chunk <= others[None, :, :]).all(axis=2)
    lt = (chunk < others[None, :, :]).any(axis=2)
    arrays["out"][start:stop] = le & lt


def dominates_matrix(
    rows: np.ndarray,
    others: np.ndarray,
    memory_cap: Optional[int] = None,
    threads: Optional[int] = None,
) -> np.ndarray:
    """Full pairwise dominance matrix: ``out[i, j]`` iff row i dominates other j.

    Chunked over the first axis so the broadcast scratch respects the memory
    cap; the chunks are independent row ranges of ``out``, so they dispatch
    across the kernel executor when ``threads`` (or the ambient context)
    asks for more than one worker.  Note the orientation is the transpose
    of :func:`dominated_mask`: here the *first* argument supplies the
    dominators.
    """
    m, k = rows.shape[0], others.shape[0]
    out = np.zeros((m, k), dtype=bool)
    if m == 0 or k == 0:
        return out
    d = rows.shape[1]
    count = resolve_threads(threads)
    effective_cap = memory_cap if count <= 1 else split_memory_cap(memory_cap, count)
    block = resolve_block_size(k, d, memory_cap=effective_cap)
    if count > 1:
        block = parallel_block_size(m, block, count)

    def worker(start: int, stop: int) -> None:
        chunk = rows[start:stop, None, :]
        le = (chunk <= others[None, :, :]).all(axis=2)
        lt = (chunk < others[None, :, :]).any(axis=2)
        out[start:stop] = le & lt

    kernel = ShmKernel(
        _dominates_chunk_shm,
        inputs={"rows": rows, "others": others},
        outputs={"out": out},
        work_hint_bytes=int(m) * int(k) * int(d),
    )
    map_blocks(worker, m, block, threads=count, shm_kernel=kernel)
    return out


def monotone_sort_order(
    data: np.ndarray, sums: Optional[np.ndarray] = None
) -> np.ndarray:
    """Sort order by attribute sum with a lexicographic tie-break.

    The sum is monotone under Pareto dominance: a strict dominator has a
    strictly smaller *mathematical* sum, so after sorting a row can only be
    dominated by earlier rows.  The lexicographic tie-break is load-bearing,
    not cosmetic: floating-point rounding can collapse two mathematically
    different sums to the same computed value, and among such ties a
    dominator (``<=`` everywhere, ``<`` somewhere) always precedes the row
    it dominates lexicographically.  Without it, a block algorithm could
    confirm a dominated row before its equal-computed-sum dominator is ever
    compared against it.
    """
    if sums is None:
        sums = data.sum(axis=1)
    keys = tuple(data[:, j] for j in range(data.shape[1] - 1, -1, -1)) + (sums,)
    return np.lexsort(keys)


def block_sfs_indices(
    data: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    memory_cap: Optional[int] = None,
    threads: Optional[int] = None,
    compute_dtype: Optional[str] = None,
) -> IndexArray:
    """Sorted skyline indices of ``data`` via block sort-filter-skyline.

    Sorts by the monotone key, then screens candidates in blocks of
    ``block_size``: one broadcast against the confirmed-skyline matrix
    eliminates candidates dominated by earlier blocks, and a pairwise
    kernel call over the survivors resolves intra-block dominance.  The
    intra-block pass may use dominated survivors as dominators — dominance
    is transitive, so any point they dominate is also dominated by a
    confirmed point or survivor, and the result is unchanged.

    Duplicates never strictly dominate each other, so all copies survive,
    exactly as in the seed implementations.

    ``threads`` / ``compute_dtype`` forward to the :func:`dominated_mask`
    calls — the outer block loop stays sequential (each block depends on
    the confirmed window of all earlier ones), so the parallelism lives in
    the per-block screens, whose candidate chunks are independent.
    """
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    sums = data.sum(axis=1)
    order = monotone_sort_order(data, sums=sums)
    ranked = data[order]
    ranked_sums = sums[order]

    confirmed = GrowableBuffer(
        data.shape[1], capacity=min(1024, max(64, n // 8)), track_sums=True
    )
    for start, stop in iter_blocks(n, block_size):
        block = ranked[start:stop]
        block_sums = ranked_sums[start:stop]
        screened = dominated_mask(
            block,
            confirmed.rows,
            memory_cap=memory_cap,
            cand_sums=block_sums,
            dom_sums=confirmed.sums,
            threads=threads,
            compute_dtype=compute_dtype,
        )
        keep = ~screened
        survivors = block[keep]
        survivor_idx = order[start:stop][keep]
        survivor_sums = block_sums[keep]
        if survivors.shape[0] > 1:
            intra = dominated_mask(
                survivors,
                survivors,
                memory_cap=memory_cap,
                cand_sums=survivor_sums,
                dom_sums=survivor_sums,
                threads=threads,
                compute_dtype=compute_dtype,
            )
            keep = ~intra
            survivors = survivors[keep]
            survivor_idx = survivor_idx[keep]
            survivor_sums = survivor_sums[keep]
        confirmed.append_batch(survivors, survivor_idx, sums=survivor_sums)
    return np.sort(confirmed.indices)
