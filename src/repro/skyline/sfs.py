"""Sort-filter-skyline (SFS) algorithm.

SFS (Chomicki et al.) improves on BNL by first sorting the points by a
monotone scoring function — here the plain attribute sum.  After sorting, a
point can only be dominated by points that appear *earlier* in the order, so
the candidate window never needs to evict members and every point is compared
against confirmed skyline points only.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset


def skyline_sfs_indices(points: ArrayLike2D) -> IndexArray:
    """Return the indices of the skyline points using sort-filter-skyline.

    Ties on the sort key are broken lexicographically by the attribute values
    so that exact duplicates sit next to each other, which keeps the
    duplicate-handling behaviour identical to the other implementations
    (duplicates never dominate each other, so all copies are kept).
    """
    data = as_dataset(points)
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)

    sums = data.sum(axis=1)
    # Lexicographic tie-break for determinism: last key is the primary key.
    order = np.lexsort(tuple(data[:, j] for j in range(data.shape[1] - 1, -1, -1)) + (sums,))

    skyline: List[int] = []
    skyline_rows: List[np.ndarray] = []
    for idx in order:
        candidate = data[idx]
        dominated = False
        for other in skyline_rows:
            if np.all(other <= candidate) and np.any(other < candidate):
                dominated = True
                break
        if not dominated:
            skyline.append(int(idx))
            skyline_rows.append(candidate)
    return np.array(sorted(skyline), dtype=np.intp)


def skyline_sfs(points: ArrayLike2D) -> np.ndarray:
    """Return the skyline points (rows) of ``points`` via sort-filter-skyline."""
    data = as_dataset(points)
    return data[skyline_sfs_indices(data)]
