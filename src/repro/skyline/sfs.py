"""Sort-filter-skyline (SFS) algorithm, block-vectorised.

SFS (Chomicki et al.) improves on BNL by first sorting the points by a
monotone scoring function — here the plain attribute sum.  After sorting, a
point can only be dominated by points that appear *earlier* in the order, so
the candidate window never needs to evict members and every point is compared
against confirmed skyline points only.

This implementation processes the sorted points in blocks
(:func:`repro.skyline.kernels.block_sfs_indices`): each block is screened
against the confirmed-skyline matrix in one memory-bounded broadcast, and
intra-block dominance is resolved by a pairwise kernel call over the block's
survivors.  The output is identical to the classic one-point-at-a-time SFS.
"""

from __future__ import annotations

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.perf.blocking import DEFAULT_BLOCK_SIZE
from repro.skyline.kernels import block_sfs_indices


def skyline_sfs_indices(
    points: ArrayLike2D, block_size: int = DEFAULT_BLOCK_SIZE
) -> IndexArray:
    """Return the indices of the skyline points using sort-filter-skyline.

    Ties on the sort key are broken lexicographically by the attribute
    values, which keeps exact duplicates adjacent and — crucially — orders a
    dominator before the rows it dominates even when floating-point
    rounding collapses their different sums to the same computed key (see
    :func:`repro.skyline.kernels.monotone_sort_order`).  Duplicates are all
    retained (they never dominate each other), identical to the other
    implementations.

    The returned indices are sorted in ascending order so that all skyline
    implementations produce byte-identical outputs.
    """
    data = as_dataset(points)
    if data.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    return block_sfs_indices(data, block_size=block_size)


def skyline_sfs(points: ArrayLike2D) -> np.ndarray:
    """Return the skyline points (rows) of ``points`` via sort-filter-skyline."""
    data = as_dataset(points)
    return data[skyline_sfs_indices(data)]
