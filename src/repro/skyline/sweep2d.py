"""Two-dimensional ``O(n log n)`` skyline sweep.

The classic plane-sweep: sort points by the first attribute (breaking ties by
the second), scan in order, and keep a point exactly when its second
attribute is strictly smaller than the minimum second attribute seen so far
among points with a strictly smaller first attribute.  This is the
``O(n log n)`` routine Algorithm 2 of the paper relies on after mapping the
eclipse problem to a two-dimensional skyline problem.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.errors import InvalidDatasetError


def skyline_sweep_2d_indices(points: ArrayLike2D) -> IndexArray:
    """Return skyline indices of a strictly two-dimensional dataset.

    Raises :class:`~repro.errors.InvalidDatasetError` when the dataset is not
    two-dimensional.  Duplicate points are all retained.
    """
    data = as_dataset(points)
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if data.shape[1] != 2:
        raise InvalidDatasetError(
            f"skyline_sweep_2d requires d=2 data, got d={data.shape[1]}"
        )

    order = np.lexsort((data[:, 1], data[:, 0]))
    skyline: List[int] = []
    best_y = np.inf          # smallest y among points with strictly smaller x
    group_x = None           # x value of the current tie group
    group_min_y = np.inf     # smallest y within the current tie group
    for idx in order:
        x, y = data[idx]
        if group_x is None or x != group_x:
            best_y = min(best_y, group_min_y)
            group_x = x
            group_min_y = np.inf
        # A point survives when no point with strictly smaller x has y <= its
        # own y, and no point with the same x has a strictly smaller y.
        if y < best_y and y <= group_min_y:
            skyline.append(int(idx))
        group_min_y = min(group_min_y, y)
    return np.array(sorted(skyline), dtype=np.intp)


def skyline_sweep_2d(points: ArrayLike2D) -> np.ndarray:
    """Return the skyline points (rows) of a two-dimensional dataset."""
    data = as_dataset(points)
    return data[skyline_sweep_2d_indices(data)]
