"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset


@pytest.fixture
def hotels() -> np.ndarray:
    """The four-hotel running example of the paper (distance, price)."""
    return np.array(
        [
            [1.0, 6.0],  # p1
            [4.0, 4.0],  # p2
            [6.0, 1.0],  # p3
            [8.0, 5.0],  # p4
        ]
    )


@pytest.fixture
def paper_ratio() -> RatioVector:
    """The ratio range [1/4, 2] used throughout the paper's running example."""
    return RatioVector.uniform(0.25, 2.0, 2)


@pytest.fixture(params=["corr", "inde", "anti"])
def distribution(request) -> str:
    """The three synthetic distributions of the evaluation."""
    return request.param


def small_dataset(distribution: str, dimensions: int, n: int = 120, seed: int = 5):
    """Helper used by cross-algorithm tests (kept small so BASE stays fast)."""
    return generate_dataset(distribution, n, dimensions, seed=seed)
