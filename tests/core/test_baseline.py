"""Tests for the baseline eclipse algorithm (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import eclipse_baseline, eclipse_baseline_indices
from repro.core.dominance import eclipse_dominates
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.errors import DimensionMismatchError


class TestBaseline:
    def test_paper_example(self, hotels, paper_ratio):
        assert eclipse_baseline_indices(hotels, paper_ratio).tolist() == [0, 1, 2]

    def test_returns_points_not_indices(self, hotels, paper_ratio):
        points = eclipse_baseline(hotels, paper_ratio)
        np.testing.assert_allclose(points, hotels[[0, 1, 2]])

    def test_accepts_plain_pair_spec(self, hotels):
        assert eclipse_baseline_indices(hotels, (0.25, 2.0)).tolist() == [0, 1, 2]

    def test_empty_dataset(self):
        assert eclipse_baseline_indices(np.empty((0, 2)), (0.5, 2.0)).size == 0

    def test_single_point_is_always_returned(self):
        assert eclipse_baseline_indices([[3.0, 4.0]], (0.5, 2.0)).tolist() == [0]

    def test_duplicates_all_returned(self):
        data = np.array([[1.0, 1.0], [1.0, 1.0], [5.0, 5.0]])
        assert eclipse_baseline_indices(data, (0.5, 2.0)).tolist() == [0, 1]

    def test_dimension_mismatch(self, hotels):
        with pytest.raises(DimensionMismatchError):
            eclipse_baseline_indices(hotels, RatioVector.uniform(0.5, 2.0, 3))

    def test_result_is_exactly_the_non_dominated_set(self):
        data = generate_dataset("inde", 60, 3, seed=8)
        ratios = RatioVector.uniform(0.4, 2.5, 3)
        result = set(eclipse_baseline_indices(data, ratios).tolist())
        for i in range(data.shape[0]):
            dominated = any(
                eclipse_dominates(data[j], data[i], ratios)
                for j in range(data.shape[0])
                if j != i
            )
            assert (i not in result) == dominated

    @pytest.mark.parametrize("dimensions", [2, 3, 4, 5])
    def test_degenerate_range_returns_all_score_minimisers(self, dimensions):
        data = generate_dataset("corr", 100, dimensions, seed=1)
        ratios = RatioVector.exact([1.0] * (dimensions - 1))
        result = eclipse_baseline_indices(data, ratios)
        scores = data @ np.ones(dimensions)
        assert np.allclose(scores[result], scores.min())

    def test_narrow_range_returns_subset_of_wide_range(self):
        """Monotonicity: a narrower ratio range has a larger domination region
        (flat angle at the 1NN end, right angle at the skyline end), so it
        returns a subset of the wider range's result — the trend of Table VIII."""
        data = generate_dataset("anti", 150, 3, seed=6)
        narrow = set(eclipse_baseline_indices(data, (0.84, 1.19)).tolist())
        wide = set(eclipse_baseline_indices(data, (0.18, 5.67)).tolist())
        assert narrow <= wide
