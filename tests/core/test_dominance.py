"""Tests for the dominance predicates and the eclipse properties of Section II."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dominance import (
    as_dataset,
    as_point,
    eclipse_dominance_matrix,
    eclipse_dominates,
    nn_dominates,
    score,
    scores,
    skyline_dominates,
)
from repro.core.weights import RATIO_INFINITY, RatioVector
from repro.errors import DimensionMismatchError, InvalidDatasetError


class TestCoercion:
    def test_as_point_rejects_nan(self):
        with pytest.raises(InvalidDatasetError):
            as_point([1.0, float("nan")])

    def test_as_point_rejects_empty(self):
        with pytest.raises(InvalidDatasetError):
            as_point([])

    def test_as_dataset_promotes_1d(self):
        assert as_dataset([1.0, 2.0]).shape == (1, 2)

    def test_as_dataset_rejects_3d(self):
        with pytest.raises(InvalidDatasetError):
            as_dataset(np.zeros((2, 2, 2)))

    def test_as_dataset_rejects_inf(self):
        with pytest.raises(InvalidDatasetError):
            as_dataset([[1.0, np.inf]])

    def test_as_dataset_empty(self):
        assert as_dataset([]).shape[0] == 0


class TestScores:
    def test_score_matches_manual_sum(self):
        assert score([1.0, 6.0], [2.0, 1.0]) == pytest.approx(8.0)

    def test_scores_vectorised(self, hotels):
        np.testing.assert_allclose(
            scores(hotels, [2.0, 1.0]), [8.0, 12.0, 13.0, 21.0]
        )

    def test_score_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            score([1.0, 2.0], [1.0])

    def test_scores_dimension_mismatch(self, hotels):
        with pytest.raises(DimensionMismatchError):
            scores(hotels, [1.0, 2.0, 3.0])

    def test_scores_empty(self):
        assert scores([], [1.0, 2.0]).size == 0


class TestDominancePredicates:
    def test_skyline_dominance_requires_strictness(self):
        assert not skyline_dominates([1.0, 2.0], [1.0, 2.0])
        assert skyline_dominates([1.0, 2.0], [1.0, 3.0])
        assert not skyline_dominates([1.0, 4.0], [2.0, 3.0])

    def test_nn_dominance_is_strict(self):
        assert nn_dominates([1.0, 1.0], [2.0, 2.0], [1.0, 1.0])
        assert not nn_dominates([1.0, 1.0], [1.0, 1.0], [1.0, 1.0])

    def test_eclipse_dominance_on_paper_example(self, hotels, paper_ratio):
        assert eclipse_dominates(hotels[0], hotels[3], paper_ratio)
        assert not eclipse_dominates(hotels[3], hotels[0], paper_ratio)

    def test_duplicates_never_dominate_each_other(self, paper_ratio):
        assert not eclipse_dominates([1.0, 1.0], [1.0, 1.0], paper_ratio)

    def test_dimension_mismatch(self, paper_ratio):
        with pytest.raises(DimensionMismatchError):
            eclipse_dominates([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], paper_ratio)
        with pytest.raises(DimensionMismatchError):
            skyline_dominates([1.0], [1.0, 2.0])

    def test_precomputed_corners_give_same_answer(self, hotels, paper_ratio):
        corners = paper_ratio.corner_weight_vectors()
        assert eclipse_dominates(
            hotels[0], hotels[3], paper_ratio, corners=corners
        ) == eclipse_dominates(hotels[0], hotels[3], paper_ratio)


class TestEclipseProperties:
    """Properties 1-4 of Section II-B."""

    def setup_method(self):
        rng = np.random.default_rng(3)
        self.points = rng.random((30, 3))
        self.ratios = RatioVector.uniform(0.5, 2.0, 3)

    def test_property1_asymmetry(self):
        for a in self.points[:10]:
            for b in self.points[:10]:
                if eclipse_dominates(a, b, self.ratios):
                    assert not eclipse_dominates(b, a, self.ratios)

    def test_property2_transitivity(self):
        matrix = eclipse_dominance_matrix(self.points, self.ratios)
        n = matrix.shape[0]
        for i in range(n):
            for j in range(n):
                if not matrix[i, j]:
                    continue
                for k in range(n):
                    if matrix[j, k]:
                        assert matrix[i, k]

    def test_property3_skyline_dominance_implies_eclipse_dominance(self):
        for a in self.points[:12]:
            for b in self.points[:12]:
                if skyline_dominates(a, b):
                    assert eclipse_dominates(a, b, self.ratios)

    def test_property4_eclipse_can_dominate_without_skyline_dominance(self, hotels, paper_ratio):
        # The introduction's example: p1 ⊀s p4 but p1 ≺e p4.
        assert not skyline_dominates(hotels[0], hotels[3])
        assert eclipse_dominates(hotels[0], hotels[3], paper_ratio)

    def test_skyline_instantiation_matches_skyline_dominance(self):
        wide = RatioVector.uniform(0.0, RATIO_INFINITY, 3)
        for a in self.points[:12]:
            for b in self.points[:12]:
                if skyline_dominates(a, b):
                    assert eclipse_dominates(a, b, wide)


class TestDominanceMatrix:
    def test_matrix_matches_pairwise_predicate(self, hotels, paper_ratio):
        matrix = eclipse_dominance_matrix(hotels, paper_ratio)
        for i in range(4):
            for j in range(4):
                expected = (
                    eclipse_dominates(hotels[i], hotels[j], paper_ratio)
                    if i != j
                    else False
                )
                assert matrix[i, j] == expected

    def test_diagonal_is_false(self, hotels, paper_ratio):
        matrix = eclipse_dominance_matrix(hotels, paper_ratio)
        assert not matrix.diagonal().any()
