"""The amortised dynamic-core memory engine (PR 5).

Covers the three mechanisms end to end:

* **capacity-doubling arenas** — :class:`repro.perf.arena.GrowableArena`
  unit behaviour (append/replace/sorted-insert parity, grow accounting,
  the exact-fit ``GROWTH_FACTOR = 1.0`` benchmark mode) and the growth
  counters surfaced through :class:`repro.core.session.SessionStats`;
* **in-place compaction** — byte-identical query results after
  :meth:`EclipseIndex.compact` on every backend, reclamation of the arena
  slices abandoned by subtree rebuilds, and the session's dead-fraction
  trigger choosing compaction mid-stream;
* **delta-driven index maintenance** — cached indexes patched with the
  membership diff of a from-scratch skyline recompute instead of being
  dropped, byte-identical to a fresh session.

Everything parity-asserted here compares against a from-scratch build over
the same data, which is the repo-wide dynamic-core contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.index.eclipse_index import EclipseIndex
from repro.perf import arena as arena_module
from repro.perf.arena import GrowableArena
from repro.skyline import incremental as inc
from repro.skyline.api import skyline_indices


def random_specs(rng, count, dims):
    specs = []
    for _ in range(count):
        low = float(rng.uniform(0.05, 1.0))
        specs.append(RatioVector.uniform(low, low + float(rng.uniform(0.1, 3.0)), dims))
    return specs


def apply_index_updates(index, data, sky, inserts, deletes):
    deletes = inc.validate_deletes(data.shape[0], deletes)
    new_data, delta = inc.apply_updates(data, sky, inserts, deletes)
    remap = inc.remap_after_delete(data.shape[0], deletes)
    index.delete_points(remap, delta.removed_old)
    index.insert_points(new_data, delta.added)
    return new_data, np.flatnonzero(delta.is_skyline)


class TestGrowableArena:
    def test_append_view_and_grow_accounting(self):
        arena = GrowableArena(np.arange(4, dtype=np.intp), capacity=4)
        assert len(arena) == 4 and arena.capacity == 4 and arena.grows == 0
        arena.append(np.array([4, 5], dtype=np.intp))
        assert arena.grows == 1
        assert np.array_equal(arena.view, np.arange(6))
        # Headroom absorbs further appends without reallocating.
        spare = arena.capacity - len(arena)
        arena.append(np.arange(6, 6 + spare, dtype=np.intp))
        assert arena.grows == 1
        assert np.array_equal(arena.view, np.arange(6 + spare))

    def test_two_dimensional_rows(self):
        arena = GrowableArena(np.zeros((2, 3)))
        arena.append(np.ones((5, 3)))
        assert arena.view.shape == (7, 3)
        assert np.all(arena.view[2:] == 1.0)

    def test_replace_keeps_capacity(self):
        arena = GrowableArena(np.arange(100.0))
        cap = arena.capacity
        arena.replace(np.arange(10.0))
        assert len(arena) == 10 and arena.capacity == cap
        assert np.array_equal(arena.view, np.arange(10.0))

    def test_sorted_insert_matches_np_insert(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            base = np.sort(rng.integers(0, 12, size=rng.integers(0, 30)).astype(float))
            arena = GrowableArena(base.copy())
            expected = base.copy()
            for _ in range(4):
                values = np.sort(
                    rng.integers(0, 12, size=rng.integers(1, 9)).astype(float)
                )
                positions = np.searchsorted(expected, values, side="left")
                expected = np.insert(expected, positions, values)
                arena.insert(positions, values)
                assert np.array_equal(arena.view, expected)

    def test_exact_fit_mode_reallocates_every_append(self, monkeypatch):
        # GROWTH_FACTOR = 1.0 is the benchmark's replica of the pre-arena
        # concatenating path: every append reallocates exactly.
        monkeypatch.setattr(arena_module, "GROWTH_FACTOR", 1.0)
        arena = GrowableArena(np.arange(32.0), capacity=32)
        for step in range(5):
            arena.append(np.array([float(step)]))
        assert arena.grows == 5


class TestCompactionParity:
    @pytest.mark.parametrize("backend", ["quadtree", "cutting"])
    @pytest.mark.parametrize("dims", [2, 3, 4])
    def test_compact_is_invisible_to_queries(self, backend, dims):
        rng = np.random.default_rng(10 * dims + len(backend))
        data = rng.uniform(0, 10, size=(70, dims))
        index = EclipseIndex(backend=backend, capacity=4).build(data)
        sky = skyline_indices(data)
        # Retire a good fraction of the indexed skyline points.
        victims = rng.choice(sky, size=max(2, sky.size // 2), replace=False)
        data, sky = apply_index_updates(index, data, sky, None, victims)
        assert index.num_dead_slots > 0
        specs = random_specs(rng, 4, dims)
        before = [index.query_indices(spec) for spec in specs]
        index.compact()
        assert index.num_dead_slots == 0
        fresh = EclipseIndex(backend=backend, capacity=4).build(data)
        for spec, want in zip(specs, before):
            got = index.query_indices(spec)
            assert np.array_equal(got, want)
            assert np.array_equal(got, fresh.query_indices(spec))
        for spec, got in zip(specs, index.query_indices_many(specs)):
            assert np.array_equal(got, index.query_indices(spec))

    @pytest.mark.parametrize("dims", [2, 3])
    def test_updates_keep_working_after_compaction(self, dims):
        rng = np.random.default_rng(3 * dims)
        data = rng.uniform(0, 10, size=(50, dims))
        index = EclipseIndex(backend="cutting", capacity=4).build(data)
        sky = skyline_indices(data)
        for step in range(4):
            deletes = rng.choice(data.shape[0], size=min(8, data.shape[0] - 1), replace=False)
            inserts = rng.uniform(0, 10, size=(9, dims))
            data, sky = apply_index_updates(index, data, sky, inserts, deletes)
            if step % 2 == 0:
                index.compact()
            fresh = EclipseIndex(backend="cutting", capacity=4).build(data)
            for spec in random_specs(rng, 3, dims):
                assert np.array_equal(
                    index.query_indices(spec), fresh.query_indices(spec)
                )

    def test_ties_and_duplicates_survive_compaction(self):
        rng = np.random.default_rng(21)
        dims = 3
        data = rng.integers(0, 6, size=(40, dims)).astype(float)
        index = EclipseIndex(backend="cutting", capacity=4).build(data)
        sky = skyline_indices(data)
        for _ in range(3):
            inserts = rng.integers(0, 6, size=(7, dims)).astype(float)
            deletes = rng.choice(data.shape[0], size=5, replace=False)
            data, sky = apply_index_updates(index, data, sky, inserts, deletes)
            index.compact()
            fresh = EclipseIndex(backend="cutting", capacity=4).build(data)
            for spec in (RatioVector.uniform(0.4, 2.0, dims),
                         RatioVector.uniform(0.9, 1.1, dims)):
                assert np.array_equal(
                    index.query_indices(spec), fresh.query_indices(spec)
                )

    def test_flattree_compaction_reclaims_abandoned_slices(self):
        # Subtree rebuilds abandon the old leaf's arena slice; a compaction
        # with an all-alive keep mask must still shrink the item arena back
        # to the referenced positions, with identical query results.
        from repro.geometry.boxes import Box
        from repro.geometry.flattree import build_cutting_core

        rng = np.random.default_rng(5)
        k = 2
        dom = Box(lows=np.full(k, -16.0), highs=np.zeros(k))
        coeffs = rng.uniform(-1, 1, size=(60, k))
        rhs = -rng.uniform(0.1, 8.0, size=60)
        tree = build_cutting_core(coeffs, rhs, dom, 4, 12, 4096, seed=0)
        for _ in range(6):
            extra_c = rng.uniform(-1, 1, size=(30, k))
            extra_r = -rng.uniform(0.1, 8.0, size=30)
            tree.insert_hyperplanes(extra_c, extra_r)
        items_before = tree.items.size
        probe = Box(np.full(k, -6.0), np.full(k, -0.5))
        want = np.sort(tree.query(probe))
        keep = np.ones(tree.size, dtype=bool)
        tree.compact_items(keep, np.arange(tree.size, dtype=np.intp))
        assert tree.items.size <= items_before
        assert np.array_equal(np.sort(tree.query(probe)), want)


class TestSessionDynamicMemory:
    def test_arena_grow_counter_surfaces(self):
        rng = np.random.default_rng(2)
        data = generate_dataset("inde", 3000, 3, seed=0)
        session = DatasetSession(data)
        session.run_batch(random_specs(rng, 6, 3), method="cutting")
        for _ in range(6):
            session.apply_updates(
                inserts=rng.uniform(0, 1, size=(12, 3)),
                deletes=rng.choice(session.num_points, size=6, replace=False),
            )
        assert session.stats.arena_grows > 0
        assert session.stats.index_inplace_updates >= 1

    def test_mid_stream_compaction_triggered_and_exact(self):
        rng = np.random.default_rng(14)
        data = generate_dataset("inde", 20_000, 3, seed=3)
        session = DatasetSession(data)
        specs = random_specs(rng, 4, 3)
        session.run_batch(specs, method="cutting")
        # Keep deleting currently indexed skyline rows: dead slots pile up
        # until the dead-fraction trigger fires, and the cost arm must pick
        # the in-place compaction over the (much dearer) full rebuild.
        for _ in range(12):
            sky = session.skyline()
            victims = rng.choice(sky, size=max(2, sky.size // 4), replace=False)
            session.apply_updates(
                inserts=rng.uniform(0, 1, size=(3, 3)), deletes=victims
            )
            if session.stats.compactions:
                break
        assert session.stats.compactions >= 1
        assert session.stats.index_builds == 1  # never rebuilt
        rebuilt = DatasetSession(session.data.copy())
        for got, want in zip(
            session.run_batch(specs, method="cutting"),
            rebuilt.run_batch(specs, method="cutting"),
        ):
            assert np.array_equal(got.indices, want.indices)

    def test_delta_patch_preserves_index_and_results(self):
        rng = np.random.default_rng(8)
        data = generate_dataset("inde", 20_000, 3, seed=1)
        session = DatasetSession(data)
        specs = random_specs(rng, 4, 3)
        session.run_batch(specs, method="cutting")
        assert session.stats.index_builds == 1
        # A massive delete batch of (mostly) buffered rows: the skyline arm
        # prefers a fresh recompute, but the membership churn is small, so
        # the cached index is patched with the diff instead of dropped.
        deletes = rng.choice(session.num_points, size=10_000, replace=False)
        report = session.apply_updates(deletes=deletes)
        assert report.skyline_plan is not None
        assert report.skyline_plan.strategy == "rebuild"
        assert report.index_delta_patches == 1
        assert session.stats.index_delta_patches == 1
        session.run_batch(specs, method="cutting")
        assert session.stats.index_builds == 1  # still the original build
        rebuilt = DatasetSession(session.data.copy())
        for got, want in zip(
            session.run_batch(specs, method="cutting"),
            rebuilt.run_batch(specs, method="cutting"),
        ):
            assert np.array_equal(got.indices, want.indices)

    def test_degenerate_arrivals_after_dead_slots_fall_back(self):
        rng = np.random.default_rng(6)
        data = rng.uniform(4.0, 10.0, size=(60, 3))
        session = DatasetSession(data, index_kwargs={"capacity": 4})
        specs = random_specs(rng, 5, 3)
        session.run_batch(specs, method="auto")
        if session.last_plan.method not in ("quadtree", "cutting"):
            pytest.skip("cost model did not pick an index for this shape")
        # First retire some slots, then pile in collinear dominators: the
        # in-place update must fail internally, drop the index, and the
        # next auto batch must fall back to the exact transformation.
        sky = session.skyline()
        session.apply_updates(deletes=sky[:2])
        t = np.arange(50, dtype=float) * 0.01
        arrivals = np.array([1.0, 3.0, 2.0]) + t[:, None] * np.array([1.0, -1.0, 0.5])
        report = session.apply_updates(inserts=arrivals)
        assert report.index_invalidations >= 1
        results = session.run_batch(specs, method="auto")
        assert session.last_plan.method == "transform"
        rebuilt = DatasetSession(session.data.copy())
        for got, want in zip(results, rebuilt.run_batch(specs, method="transform")):
            assert np.array_equal(got.indices, want.indices)

    @pytest.mark.parametrize("dims", [2, 3])
    def test_long_stream_fuzz_parity(self, dims):
        # The end-to-end contract: a long mixed stream over one session —
        # arena growth, dead slots, occasional compactions and delta
        # patches all interleaved — answers every query byte-identically
        # to a from-scratch session over the same data.
        rng = np.random.default_rng(31 + dims)
        data = rng.uniform(0, 10, size=(120, dims))
        session = DatasetSession(data, index_kwargs={"capacity": 4})
        specs = random_specs(rng, 3, dims)
        method = "quadtree" if dims == 2 else "cutting"
        session.run_batch(specs, method=method)
        for step in range(8):
            num_deletes = int(rng.integers(0, max(1, session.num_points // 3)))
            deletes = (
                rng.choice(session.num_points, size=num_deletes, replace=False)
                if num_deletes
                else None
            )
            num_inserts = int(rng.integers(0, 15))
            inserts = (
                rng.uniform(0, 10, size=(num_inserts, dims)) if num_inserts else None
            )
            session.apply_updates(inserts=inserts, deletes=deletes)
            if session.num_points == 0:
                break
            rebuilt = DatasetSession(session.data.copy(), index_kwargs={"capacity": 4})
            for got, want in zip(
                session.run_batch(specs, method=method),
                rebuilt.run_batch(specs, method=method),
            ):
                assert np.array_equal(got.indices, want.indices), (dims, step)
