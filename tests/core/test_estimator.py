"""Tests for the result-size estimator (Tables VI–VIII support)."""

from __future__ import annotations

import pytest

from repro.core.estimator import expected_eclipse_points, ratio_range_for_target_size
from repro.errors import InvalidDatasetError


class TestExpectedEclipsePoints:
    def test_returns_reasonable_estimate(self):
        estimate = expected_eclipse_points(256, 3, 0.36, 2.75, trials=4, seed=0)
        assert 1.0 <= estimate.mean <= 30.0
        assert estimate.trials == 4
        assert float(estimate) == estimate.mean

    def test_deterministic_given_seed(self):
        a = expected_eclipse_points(128, 3, 0.5, 2.0, trials=3, seed=7)
        b = expected_eclipse_points(128, 3, 0.5, 2.0, trials=3, seed=7)
        assert a.mean == b.mean

    def test_more_dimensions_more_points(self):
        """Table VII's trend: the count grows quickly with d."""
        low = expected_eclipse_points(512, 2, 0.36, 2.75, trials=6, seed=1).mean
        high = expected_eclipse_points(512, 4, 0.36, 2.75, trials=6, seed=1).mean
        assert high > low

    def test_wider_range_more_points(self):
        """Table VIII's trend: wider ratio ranges return more points."""
        wide = expected_eclipse_points(512, 3, 0.18, 5.67, trials=6, seed=2).mean
        narrow = expected_eclipse_points(512, 3, 0.84, 1.19, trials=6, seed=2).mean
        assert wide >= narrow

    def test_n_has_small_impact(self):
        """Table VI's trend: the count is nearly flat in n."""
        small = expected_eclipse_points(128, 3, 0.36, 2.75, trials=6, seed=3).mean
        large = expected_eclipse_points(2048, 3, 0.36, 2.75, trials=6, seed=3).mean
        assert large < small * 4

    def test_custom_generator(self):
        def constant(n, d, rng):
            import numpy as np

            return np.tile(np.linspace(1, 2, d), (n, 1))

        estimate = expected_eclipse_points(
            64, 3, 0.5, 2.0, trials=2, seed=0, generator=constant
        )
        # All points identical: none dominates another, all are returned.
        assert estimate.mean == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=0, dimensions=3, ratio_low=0.5, ratio_high=2.0),
            dict(n=10, dimensions=1, ratio_low=0.5, ratio_high=2.0),
            dict(n=10, dimensions=3, ratio_low=0.5, ratio_high=2.0, trials=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(InvalidDatasetError):
            expected_eclipse_points(**kwargs)


class TestRatioRangeForTargetSize:
    def test_returns_valid_range(self):
        low, high = ratio_range_for_target_size(256, 3, target=5, trials=2, seed=0)
        assert 0 < low <= 1 <= high

    def test_larger_target_gives_wider_range(self):
        few = ratio_range_for_target_size(256, 3, target=2, trials=2, seed=0)
        many = ratio_range_for_target_size(256, 3, target=12, trials=2, seed=0)
        assert (many[1] - many[0]) >= (few[1] - few[0]) - 1e-9

    def test_validation(self):
        with pytest.raises(InvalidDatasetError):
            ratio_range_for_target_size(256, 3, target=0)
