"""Tests asserting the exact worked examples of the paper.

Covers the running example of Figures 1–3 and 5 (hotels), the dominance
examples of Section II, Example 2 (boundary-value checking), Example 3 (the
intercept mapping values), and Examples 4/5 + Table III (the dual-space
index walkthrough).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import eclipse_baseline_indices
from repro.core.dominance import eclipse_dominates, score, skyline_dominates
from repro.core.transform import eclipse_transform_indices, map_to_intercept_space
from repro.core.weights import RatioVector
from repro.geometry.arrangement2d import Arrangement2D
from repro.geometry.dual import dual_hyperplanes
from repro.index.eclipse_index import EclipseIndex
from repro.knn.linear import nearest_neighbor_index
from repro.skyline.api import skyline_indices

P1, P2, P3, P4 = 0, 1, 2, 3


class TestFigure1OneNN:
    def test_scores_with_weights_2_1(self, hotels):
        # S(p1) = 2*1 + 6 = 8 is the smallest score (Figure 1).
        weights = [2.0, 1.0]
        assert score(hotels[P1], weights) == pytest.approx(8.0)
        assert nearest_neighbor_index(hotels, weights) == P1

    def test_p1_1nn_dominates_everything_with_ratio_2(self, hotels):
        ratios = RatioVector.exact([2.0])
        for other in (P2, P3, P4):
            assert eclipse_dominates(hotels[P1], hotels[other], ratios)


class TestFigure2Skyline:
    def test_skyline_is_p1_p2_p3(self, hotels):
        assert skyline_indices(hotels).tolist() == [P1, P2, P3]

    def test_p1_does_not_skyline_dominate_p4(self, hotels):
        # Stated explicitly in the introduction: p1 ⊀s p4 but p1 ≺e p4.
        assert not skyline_dominates(hotels[P1], hotels[P4])


class TestFigure3Eclipse:
    def test_eclipse_is_p1_p2_p3(self, hotels, paper_ratio):
        assert eclipse_baseline_indices(hotels, paper_ratio).tolist() == [P1, P2, P3]
        assert eclipse_transform_indices(hotels, paper_ratio).tolist() == [P1, P2, P3]

    def test_p1_eclipse_dominates_p4(self, hotels, paper_ratio):
        assert eclipse_dominates(hotels[P1], hotels[P4], paper_ratio)

    def test_eclipse_points_do_not_dominate_each_other(self, hotels, paper_ratio):
        for a in (P1, P2, P3):
            for b in (P1, P2, P3):
                if a != b:
                    assert not eclipse_dominates(hotels[a], hotels[b], paper_ratio)

    def test_domination_lines_of_p1(self, hotels, paper_ratio):
        # For p1 the domination lines are y = -2x + 8 and y = -x/4 + 6.25:
        # their y-intercepts are the two corner scores of p1.
        corners = paper_ratio.corner_weight_vectors()
        scores = corners @ hotels[P1]
        assert sorted(np.round(scores, 6).tolist()) == [6.25, 8.0]


class TestExample2BoundaryChecking:
    def test_corner_scores_of_p2_and_p4(self, hotels, paper_ratio):
        # S(p2)_{1/4} = 5, S(p2)_{2} = 12, S(p4)_{1/4} = 7, S(p4)_{2} = 21.
        assert score(hotels[P2], [0.25, 1.0]) == pytest.approx(5.0)
        assert score(hotels[P2], [2.0, 1.0]) == pytest.approx(12.0)
        assert score(hotels[P4], [0.25, 1.0]) == pytest.approx(7.0)
        assert score(hotels[P4], [2.0, 1.0]) == pytest.approx(21.0)
        assert eclipse_dominates(hotels[P2], hotels[P4], paper_ratio)


class TestExample3InterceptMapping:
    def test_mapped_points_match_figure5(self, hotels, paper_ratio):
        mapped = map_to_intercept_space(hotels, paper_ratio)
        expected = np.array(
            [
                [4.0, 6.25],
                [6.0, 5.0],
                [6.5, 2.5],
                [10.5, 7.0],
            ]
        )
        np.testing.assert_allclose(mapped, expected)

    def test_skyline_of_mapped_points_gives_eclipse(self, hotels, paper_ratio):
        mapped = map_to_intercept_space(hotels, paper_ratio)
        assert skyline_indices(mapped).tolist() == [P1, P2, P3]


class TestSection4DualSpaceExample:
    """Example 4/5 and Table III: the dual lines of p1, p2, p3."""

    def intersections_x(self, hotels):
        skyline = hotels[[P1, P2, P3]]
        duals = dual_hyperplanes(skyline)
        arrangement = Arrangement2D(duals)
        return {
            tuple(sorted(pair.pair)): pair.x_coordinate()
            for pair in arrangement.intersections
        }

    def test_dual_lines(self, hotels):
        duals = dual_hyperplanes(hotels[[P1, P2, P3]])
        # p1(1, 6) -> y = x - 6, p2(4, 4) -> y = 4x - 4, p3(6, 1) -> y = 6x - 1.
        assert duals[0].evaluate([0.0]) == pytest.approx(-6.0)
        assert duals[1].evaluate([1.0]) == pytest.approx(0.0)
        assert duals[2].evaluate([0.5]) == pytest.approx(2.0)

    def test_intersection_x_coordinates(self, hotels):
        xs = self.intersections_x(hotels)
        assert xs[(0, 1)] == pytest.approx(-2.0 / 3.0)  # p1p2[x]
        assert xs[(0, 2)] == pytest.approx(-1.0)        # p1p3[x]
        assert xs[(1, 2)] == pytest.approx(-1.5)        # p2p3[x]

    def test_order_vector_of_last_interval(self, hotels):
        # Interval (-2/3, 0] stores ov4 = <2, 1, 0> (Figure 7).
        duals = dual_hyperplanes(hotels[[P1, P2, P3]])
        arrangement = Arrangement2D(duals)
        assert arrangement.order_vector_at(-0.25).tolist() == [2, 1, 0]

    def test_number_of_intervals(self, hotels):
        duals = dual_hyperplanes(hotels[[P1, P2, P3]])
        arrangement = Arrangement2D(duals)
        # (u choose 2) + 1 = 4 intervals for u = 3.
        assert arrangement.num_intervals == 4

    def test_index_query_matches_example5(self, hotels, paper_ratio):
        index = EclipseIndex(backend="quadtree").build(hotels)
        assert index.query_indices(paper_ratio).tolist() == [P1, P2, P3]
        stats = index.last_query_stats
        # All three intersections lie inside the dual query range [-2, -1/4].
        assert stats.num_candidates == 3
        assert stats.num_skyline == 3
        assert stats.num_eclipse == 3
