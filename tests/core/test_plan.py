"""Tests for the cost-model planner (repro.core.plan)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import plan
from repro.core.plan import (
    CostEstimate,
    canonical_method,
    choose_skyline_method,
    expected_skyline_size,
    method_cost_estimates,
    plan_query,
)
from repro.errors import AlgorithmNotSupportedError


class TestCanonicalMethod:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("base", "baseline"),
            ("BASELINE", "baseline"),
            ("tran", "transform"),
            ("quad", "quadtree"),
            ("cut", "cutting"),
            ("auto", "auto"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert canonical_method(alias) == canonical

    def test_unknown_method(self):
        with pytest.raises(AlgorithmNotSupportedError):
            canonical_method("magic")
        with pytest.raises(AlgorithmNotSupportedError):
            canonical_method(None)


class TestSkylineSubstrate:
    # Snapshot of the n-and-d-aware dispatch across the (n, d) grid; the
    # substrates all return identical indices, so these pins document the
    # *speed* policy and catch accidental dispatch drift.
    @pytest.mark.parametrize(
        "n, d, expected",
        [
            (10, 2, "sweep2d"),
            (1_000_000, 2, "sweep2d"),
            (100, 3, "sfs"),  # small-n: recursion never recoups its overhead
            (511, 4, "sfs"),
            (512, 3, "divide_conquer"),
            (50_000, 3, "divide_conquer"),
            (50_000, 4, "divide_conquer"),
            (100, 5, "sfs"),
            (50_000, 5, "sfs"),
            (50_000, 8, "sfs"),
        ],
    )
    def test_grid_snapshot(self, n, d, expected):
        assert choose_skyline_method(n, d) == expected

    def test_expected_skyline_size_monotone_in_d(self):
        assert expected_skyline_size(10_000, 2) < expected_skyline_size(10_000, 4)

    def test_expected_skyline_size_bounded_by_n(self):
        assert expected_skyline_size(10, 9) <= 10
        assert expected_skyline_size(0, 3) == 0


class TestCostEstimates:
    def test_all_methods_estimated(self):
        estimates = method_cost_estimates(1000, 3)
        assert sorted(e.method for e in estimates) == [
            "baseline",
            "cutting",
            "quadtree",
            "transform",
        ]

    def test_scan_methods_have_no_build(self):
        estimates = {e.method: e for e in method_cost_estimates(1000, 3)}
        assert estimates["baseline"].build == 0.0
        assert estimates["transform"].build == 0.0
        assert estimates["quadtree"].build > 0.0

    def test_cutting_build_priced_below_quadtree_for_high_d(self):
        # The PR 3 measured constants: ~0.3 us/pair for the flattened
        # cutting build vs ~tens of us/pair for the non-separating quadtree.
        estimates = {e.method: e for e in method_cost_estimates(10_000, 4)}
        assert estimates["cutting"].build < estimates["quadtree"].build
        # In two dimensions both share the sorted structure's price.
        estimates_2d = {e.method: e for e in method_cost_estimates(10_000, 2)}
        assert estimates_2d["cutting"].build == estimates_2d["quadtree"].build

    def test_measured_skyline_size_drives_index_cost(self):
        small = {e.method: e for e in method_cost_estimates(10_000, 4, num_skyline=50)}
        large = {
            e.method: e for e in method_cost_estimates(10_000, 4, num_skyline=5000)
        }
        assert small["quadtree"].build < large["quadtree"].build
        assert small["quadtree"].per_query < large["quadtree"].per_query

    def test_total_includes_build_once(self):
        estimate = CostEstimate("quadtree", build=100.0, per_query=1.0)
        assert estimate.total(1) == pytest.approx(101.0)
        assert estimate.total(10) == pytest.approx(110.0)


class TestPlanQuery:
    @pytest.mark.parametrize("n", [10, 1000, 100_000])
    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_one_shot_always_transform(self, n, d):
        plan = plan_query(n, d, method="auto", num_queries=1)
        assert plan.method == "transform"
        assert plan.index_backend is None
        assert not plan.uses_index

    def test_large_batches_amortise_an_index(self):
        plan = plan_query(50_000, 3, method="auto", num_queries=200)
        assert plan.uses_index
        assert plan.index_backend == plan.method
        # PR 3 recalibration: the flattened cutting build (load-reduction
        # rollback) is priced far below the quadtree build, so the planner
        # now amortises the cheapest index, not quadtree unconditionally.
        assert plan.method == "cutting"

    def test_huge_measured_skyline_disables_index_choice(self):
        # When every point is a skyline point (worst case), the u^2 pair
        # enumeration dwarfs repeated transformation passes.
        plan = plan_query(
            50_000, 3, method="auto", num_queries=20, num_skyline=50_000
        )
        assert plan.method == "transform"

    def test_explicit_method_is_respected(self):
        plan = plan_query(1000, 3, method="cutting", num_queries=1)
        assert plan.method == "cutting"
        assert plan.index_backend == "cutting"
        assert "explicitly" in plan.reason

    def test_substrates_recorded(self):
        plan = plan_query(50_000, 4, method="auto", num_queries=1)
        assert plan.skyline_method == "divide_conquer"
        # The corner-score space has 2^(d-1) = 8 columns -> block-SFS.
        assert plan.mapped_skyline_method == "sfs"

    def test_estimate_for_unknown_method_raises(self):
        plan = plan_query(100, 3)
        with pytest.raises(KeyError):
            plan.estimate_for("magic")


class TestExplain:
    def test_explain_mentions_workload_and_choice(self):
        plan = plan_query(2_000, 3, method="auto", num_queries=50, num_skyline=240)
        text = plan.explain()
        assert "n=2000" in text
        assert "d=3" in text
        assert "50 ratio-range queries" in text
        assert "240 (measured)" in text
        assert plan.method in text
        assert "-> " + plan.method[:4] in text.replace("  ", " ") or plan.method in text

    def test_explain_lists_every_method(self):
        text = plan_query(2_000, 3).explain()
        for method in ("baseline", "transform", "quadtree", "cutting"):
            assert method in text

    def test_explain_singular_query(self):
        text = plan_query(100, 2, num_queries=1).explain()
        assert "1 ratio-range query" in text


class TestBackendCalibration:
    """PR 9: the per-backend dispatch-cost model in the planner.

    The thread and serial arithmetic must reproduce the PR 7 model bit
    for bit (``work`` is ignored there), and the process backend must
    price its measured dispatch-overhead floor: tiny kernels stay serial,
    large ones approach the ideal process scaling from below.
    """

    def test_thread_backend_reproduces_pr7_model_bitwise(self):
        for threads in (1, 2, 4, 8, 16):
            expected = (
                1.0
                if threads == 1
                else 1.0 + plan.PARALLEL_EFFICIENCY * (threads - 1)
            )
            assert plan.parallel_speedup(threads) == expected
            # `work` must not perturb the thread model at all.
            for work in (None, 0.0, 1.0, 1e3, 1e9):
                assert plan.parallel_speedup(
                    threads, backend="thread", work=work
                ) == expected

    def test_serial_backend_is_always_one(self):
        for threads in (1, 2, 8):
            assert plan.parallel_speedup(threads, backend="serial") == 1.0
            assert (
                plan.parallel_speedup(threads, backend="serial", work=1e12)
                == 1.0
            )

    def test_process_small_work_stays_serial(self):
        below = plan.MIN_PROCESS_PARALLEL_OPS / 2
        assert plan.parallel_speedup(8, backend="process", work=below) == 1.0

    def test_process_large_work_approaches_ideal_from_below(self):
        ideal = 1.0 + plan.PROCESS_EFFICIENCY * 7
        moderate = plan.parallel_speedup(
            8, backend="process", work=plan.MIN_PROCESS_PARALLEL_OPS * 2
        )
        huge = plan.parallel_speedup(8, backend="process", work=1e12)
        assert 1.0 <= moderate < huge < ideal or np.isclose(huge, ideal)
        # The floor monotonically hurts less as work grows.
        assert moderate < huge

    def test_process_without_work_prices_ideal(self):
        assert plan.parallel_speedup(4, backend="process") == 1.0 + (
            plan.PROCESS_EFFICIENCY * 3
        )

    def test_thread_estimates_unchanged_by_backend_param_default(self):
        # method_cost_estimates(backend="thread") must be byte-identical
        # to the PR 7 call without the parameter.
        for threads in (1, 4):
            base = plan.method_cost_estimates(50_000, 4, threads=threads)
            explicit = plan.method_cost_estimates(
                50_000, 4, threads=threads, backend="thread"
            )
            for a, b in zip(base, explicit):
                assert a.method == b.method
                assert a.build == b.build
                assert a.per_query == b.per_query

    def test_process_backend_prices_dispatch_floor_into_estimates(self):
        threaded = plan.method_cost_estimates(
            200_000, 4, threads=8, backend="thread"
        )
        processed = plan.method_cost_estimates(
            200_000, 4, threads=8, backend="process"
        )
        # The process backend never beats the thread model's optimistic
        # scaling in the planner's own units (its efficiency constant is
        # lower and the floor only adds cost).
        for a, b in zip(threaded, processed):
            assert a.method == b.method
            assert b.total(8) >= a.total(8)

    def test_plan_query_accepts_backend_and_still_picks_a_method(self):
        chosen = plan.plan_query(
            100_000, 4, num_queries=16, threads=8, backend="process"
        )
        assert chosen.method in plan.METHOD_ALIASES.values()
