"""Tests for the cost-model planner (repro.core.plan)."""

from __future__ import annotations

import pytest

from repro.core.plan import (
    CostEstimate,
    canonical_method,
    choose_skyline_method,
    expected_skyline_size,
    method_cost_estimates,
    plan_query,
)
from repro.errors import AlgorithmNotSupportedError


class TestCanonicalMethod:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("base", "baseline"),
            ("BASELINE", "baseline"),
            ("tran", "transform"),
            ("quad", "quadtree"),
            ("cut", "cutting"),
            ("auto", "auto"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert canonical_method(alias) == canonical

    def test_unknown_method(self):
        with pytest.raises(AlgorithmNotSupportedError):
            canonical_method("magic")
        with pytest.raises(AlgorithmNotSupportedError):
            canonical_method(None)


class TestSkylineSubstrate:
    # Snapshot of the n-and-d-aware dispatch across the (n, d) grid; the
    # substrates all return identical indices, so these pins document the
    # *speed* policy and catch accidental dispatch drift.
    @pytest.mark.parametrize(
        "n, d, expected",
        [
            (10, 2, "sweep2d"),
            (1_000_000, 2, "sweep2d"),
            (100, 3, "sfs"),  # small-n: recursion never recoups its overhead
            (511, 4, "sfs"),
            (512, 3, "divide_conquer"),
            (50_000, 3, "divide_conquer"),
            (50_000, 4, "divide_conquer"),
            (100, 5, "sfs"),
            (50_000, 5, "sfs"),
            (50_000, 8, "sfs"),
        ],
    )
    def test_grid_snapshot(self, n, d, expected):
        assert choose_skyline_method(n, d) == expected

    def test_expected_skyline_size_monotone_in_d(self):
        assert expected_skyline_size(10_000, 2) < expected_skyline_size(10_000, 4)

    def test_expected_skyline_size_bounded_by_n(self):
        assert expected_skyline_size(10, 9) <= 10
        assert expected_skyline_size(0, 3) == 0


class TestCostEstimates:
    def test_all_methods_estimated(self):
        estimates = method_cost_estimates(1000, 3)
        assert sorted(e.method for e in estimates) == [
            "baseline",
            "cutting",
            "quadtree",
            "transform",
        ]

    def test_scan_methods_have_no_build(self):
        estimates = {e.method: e for e in method_cost_estimates(1000, 3)}
        assert estimates["baseline"].build == 0.0
        assert estimates["transform"].build == 0.0
        assert estimates["quadtree"].build > 0.0

    def test_cutting_build_priced_below_quadtree_for_high_d(self):
        # The PR 3 measured constants: ~0.3 us/pair for the flattened
        # cutting build vs ~tens of us/pair for the non-separating quadtree.
        estimates = {e.method: e for e in method_cost_estimates(10_000, 4)}
        assert estimates["cutting"].build < estimates["quadtree"].build
        # In two dimensions both share the sorted structure's price.
        estimates_2d = {e.method: e for e in method_cost_estimates(10_000, 2)}
        assert estimates_2d["cutting"].build == estimates_2d["quadtree"].build

    def test_measured_skyline_size_drives_index_cost(self):
        small = {e.method: e for e in method_cost_estimates(10_000, 4, num_skyline=50)}
        large = {
            e.method: e for e in method_cost_estimates(10_000, 4, num_skyline=5000)
        }
        assert small["quadtree"].build < large["quadtree"].build
        assert small["quadtree"].per_query < large["quadtree"].per_query

    def test_total_includes_build_once(self):
        estimate = CostEstimate("quadtree", build=100.0, per_query=1.0)
        assert estimate.total(1) == pytest.approx(101.0)
        assert estimate.total(10) == pytest.approx(110.0)


class TestPlanQuery:
    @pytest.mark.parametrize("n", [10, 1000, 100_000])
    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_one_shot_always_transform(self, n, d):
        plan = plan_query(n, d, method="auto", num_queries=1)
        assert plan.method == "transform"
        assert plan.index_backend is None
        assert not plan.uses_index

    def test_large_batches_amortise_an_index(self):
        plan = plan_query(50_000, 3, method="auto", num_queries=200)
        assert plan.uses_index
        assert plan.index_backend == plan.method
        # PR 3 recalibration: the flattened cutting build (load-reduction
        # rollback) is priced far below the quadtree build, so the planner
        # now amortises the cheapest index, not quadtree unconditionally.
        assert plan.method == "cutting"

    def test_huge_measured_skyline_disables_index_choice(self):
        # When every point is a skyline point (worst case), the u^2 pair
        # enumeration dwarfs repeated transformation passes.
        plan = plan_query(
            50_000, 3, method="auto", num_queries=20, num_skyline=50_000
        )
        assert plan.method == "transform"

    def test_explicit_method_is_respected(self):
        plan = plan_query(1000, 3, method="cutting", num_queries=1)
        assert plan.method == "cutting"
        assert plan.index_backend == "cutting"
        assert "explicitly" in plan.reason

    def test_substrates_recorded(self):
        plan = plan_query(50_000, 4, method="auto", num_queries=1)
        assert plan.skyline_method == "divide_conquer"
        # The corner-score space has 2^(d-1) = 8 columns -> block-SFS.
        assert plan.mapped_skyline_method == "sfs"

    def test_estimate_for_unknown_method_raises(self):
        plan = plan_query(100, 3)
        with pytest.raises(KeyError):
            plan.estimate_for("magic")


class TestExplain:
    def test_explain_mentions_workload_and_choice(self):
        plan = plan_query(2_000, 3, method="auto", num_queries=50, num_skyline=240)
        text = plan.explain()
        assert "n=2000" in text
        assert "d=3" in text
        assert "50 ratio-range queries" in text
        assert "240 (measured)" in text
        assert plan.method in text
        assert "-> " + plan.method[:4] in text.replace("  ", " ") or plan.method in text

    def test_explain_lists_every_method(self):
        text = plan_query(2_000, 3).explain()
        for method in ("baseline", "transform", "quadtree", "cutting"):
            assert method in text

    def test_explain_singular_query(self):
        text = plan_query(100, 2, num_queries=1).explain()
        assert "1 ratio-range query" in text
