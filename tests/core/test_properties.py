"""Property-based tests (hypothesis) for the eclipse core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.baseline import eclipse_baseline_indices
from repro.core.dominance import eclipse_dominates
from repro.core.transform import eclipse_transform_indices
from repro.core.weights import RATIO_INFINITY, RatioVector
from repro.index.eclipse_index import eclipse_index_query
from repro.knn.linear import knn_indices
from repro.skyline.api import skyline_indices

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
# Coordinates are quantised to six decimals.  The corner-score formation of
# BASE/TRAN is floating point (``data @ corners.T``): a coordinate difference
# whose contribution to a score falls below one ulp of the other terms (e.g.
# 2.5e-260 against 1.0) is unrepresentable there, while the raw-space
# skyline prefilter of the index path compares coordinates exactly — so
# sub-ulp differences make the algorithms legitimately diverge.  The paper
# defines the operator over reals; the fuzz targets logic, not sub-ulp
# arithmetic, so we keep magnitudes inside float64's exact-comparison range.
coordinates = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
).map(lambda value: round(value, 6))


@st.composite
def datasets(draw, min_points=1, max_points=40, min_d=2, max_d=4):
    """A random dataset of shape (n, d) with bounded positive coordinates."""
    d = draw(st.integers(min_value=min_d, max_value=max_d))
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    values = draw(
        st.lists(
            st.lists(coordinates, min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
    return np.array(values, dtype=float)


@st.composite
def ratio_ranges(draw):
    """A random positive, non-degenerate ratio range [low, high] with low < high.

    Degenerate ranges (the 1NN instantiation) are exercised by the dedicated
    ``test_1nn_instantiation``; keeping them out of the generic strategies
    avoids tie-on-a-measure-zero-set artefacts in the set-containment
    properties.
    """
    low = draw(st.floats(min_value=0.01, max_value=4.0))
    width = draw(st.floats(min_value=0.01, max_value=6.0))
    return (low, low + width)


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
@given(data=datasets(), rng=ratio_ranges())
@settings(max_examples=60, deadline=None)
def test_all_algorithms_agree(data, rng):
    """BASE, TRAN, and the index path return identical eclipse sets."""
    ratios = RatioVector.uniform(rng[0], rng[1], data.shape[1])
    base = eclipse_baseline_indices(data, ratios).tolist()
    tran = eclipse_transform_indices(data, ratios).tolist()
    index = sorted(eclipse_index_query(data, ratios, backend="scan").tolist())
    assert base == tran == index


@given(data=datasets(), rng=ratio_ranges())
@settings(max_examples=60, deadline=None)
def test_eclipse_is_subset_of_skyline(data, rng):
    ratios = RatioVector.uniform(rng[0], rng[1], data.shape[1])
    eclipse = set(eclipse_transform_indices(data, ratios).tolist())
    skyline = set(skyline_indices(data).tolist())
    assert eclipse <= skyline


@st.composite
def integer_datasets(draw, max_points=30, min_d=2, max_d=3):
    """Datasets with small integer coordinates.

    ``RATIO_INFINITY`` is a large but finite surrogate for an unbounded
    ratio, so the skyline-instantiation identity is exact only when attribute
    differences are not vanishingly small relative to ``1/RATIO_INFINITY``;
    integer-valued data makes the property hold exactly.
    """
    d = draw(st.integers(min_value=min_d, max_value=max_d))
    n = draw(st.integers(min_value=1, max_value=max_points))
    values = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=50), min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
    return np.array(values, dtype=float)


@given(data=integer_datasets())
@settings(max_examples=40, deadline=None)
def test_skyline_instantiation(data):
    """Eclipse with ratio range [0, +inf) equals the skyline."""
    ratios = RatioVector.uniform(0.0, RATIO_INFINITY, data.shape[1])
    eclipse = eclipse_baseline_indices(data, ratios).tolist()
    skyline = skyline_indices(data).tolist()
    assert eclipse == skyline


@given(data=datasets(), ratio=st.floats(min_value=0.05, max_value=5.0))
@settings(max_examples=40, deadline=None)
def test_1nn_instantiation(data, ratio):
    """Eclipse with a degenerate range contains the 1NN and only optimal scores."""
    d = data.shape[1]
    ratios = RatioVector.exact([ratio] * (d - 1))
    weights = np.append(np.full(d - 1, ratio), 1.0)
    eclipse = eclipse_baseline_indices(data, ratios)
    nn = int(knn_indices(data, weights, k=1)[0])
    assert nn in eclipse.tolist()
    scores = data @ weights
    assert np.allclose(scores[eclipse], scores.min())


@given(data=datasets(), rng=ratio_ranges(), factor=st.floats(min_value=1.0, max_value=4.0))
@settings(max_examples=40, deadline=None)
def test_monotonicity_in_range_width(data, rng, factor):
    """Widening the ratio range can only grow the eclipse set.

    A narrower range gives every point a larger domination region (the flat
    angle of 1NN at one extreme, the right angle of skyline at the other),
    so the narrow-range result is contained in the wide-range result — the
    trend reported in Table VIII.
    """
    d = data.shape[1]
    narrow = RatioVector.uniform(rng[0], rng[1], d)
    wide = narrow.widen(factor)
    narrow_set = set(eclipse_transform_indices(data, narrow).tolist())
    wide_set = set(eclipse_transform_indices(data, wide).tolist())
    assert narrow_set <= wide_set


@given(data=datasets(), rng=ratio_ranges(), scale=st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_invariance_under_positive_scaling(data, rng, scale):
    """Scaling every attribute by the same positive factor keeps the result."""
    ratios = RatioVector.uniform(rng[0], rng[1], data.shape[1])
    original = eclipse_transform_indices(data, ratios).tolist()
    scaled = eclipse_transform_indices(data * scale, ratios).tolist()
    assert original == scaled


@given(data=datasets(min_points=2), rng=ratio_ranges())
@settings(max_examples=40, deadline=None)
def test_dominance_asymmetry(data, rng):
    ratios = RatioVector.uniform(rng[0], rng[1], data.shape[1])
    a, b = data[0], data[1]
    if eclipse_dominates(a, b, ratios):
        assert not eclipse_dominates(b, a, ratios)


@given(data=datasets(), rng=ratio_ranges())
@settings(max_examples=40, deadline=None)
def test_result_never_empty_for_nonempty_input(data, rng):
    """At least one point is never eclipse-dominated (the score minimiser)."""
    ratios = RatioVector.uniform(rng[0], rng[1], data.shape[1])
    assert eclipse_transform_indices(data, ratios).size >= 1


@given(data=datasets(), rng=ratio_ranges())
@settings(max_examples=30, deadline=None)
def test_permutation_invariance(data, rng):
    """Shuffling the dataset permutes but does not change the eclipse set."""
    ratios = RatioVector.uniform(rng[0], rng[1], data.shape[1])
    order = np.random.default_rng(0).permutation(data.shape[0])
    original = set(map(tuple, data[eclipse_baseline_indices(data, ratios)]))
    shuffled = set(map(tuple, data[order][eclipse_baseline_indices(data[order], ratios)]))
    assert original == shuffled
