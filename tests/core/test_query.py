"""Tests for the EclipseQuery facade and the EclipseResult container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import EclipseQuery, EclipseResult, eclipse
from repro.core.weights import ImportanceCategory, RatioVector
from repro.data.generators import generate_dataset
from repro.errors import AlgorithmNotSupportedError, InvalidWeightRangeError


class TestEclipseQuery:
    def test_default_method_is_transform(self, hotels):
        result = EclipseQuery(hotels).run(ratios=(0.25, 2.0))
        assert result.method == "transform"
        assert result.indices.tolist() == [0, 1, 2]

    @pytest.mark.parametrize(
        "method, canonical",
        [
            ("base", "baseline"),
            ("baseline", "baseline"),
            ("tran", "transform"),
            ("quad", "quadtree"),
            ("quadtree", "quadtree"),
            ("cutting", "cutting"),
        ],
    )
    def test_method_aliases(self, hotels, method, canonical):
        result = EclipseQuery(hotels).run(ratios=(0.25, 2.0), method=method)
        assert result.method == canonical
        assert result.indices.tolist() == [0, 1, 2]

    def test_unknown_method(self, hotels):
        with pytest.raises(AlgorithmNotSupportedError):
            EclipseQuery(hotels).run(ratios=(0.25, 2.0), method="magic")

    def test_default_ratios_from_constructor(self, hotels):
        query = EclipseQuery(hotels, ratios=(0.25, 2.0))
        assert query.run().indices.tolist() == [0, 1, 2]

    def test_missing_ratios_default_to_skyline(self, hotels):
        result = EclipseQuery(hotels).run()
        assert result.indices.tolist() == [0, 1, 2]
        assert result.ratios.is_skyline

    def test_category_spec(self, hotels):
        result = EclipseQuery(hotels).run(
            ratios=[ImportanceCategory.SIMILAR], method="baseline"
        )
        assert set(result.indices.tolist()) <= {0, 1, 2}

    def test_index_is_cached_between_queries(self, hotels):
        query = EclipseQuery(hotels)
        query.run(ratios=(0.25, 2.0), method="quad")
        index_first = query.build_index("quad")
        query.run(ratios=(0.5, 1.5), method="quad")
        assert query.build_index("quad") is index_first

    def test_build_index_rejects_non_index_method(self, hotels):
        with pytest.raises(AlgorithmNotSupportedError):
            EclipseQuery(hotels).build_index("transform")

    def test_all_methods_agree_on_random_data(self):
        data = generate_dataset("anti", 150, 3, seed=13)
        query = EclipseQuery(data)
        reference = query.run(ratios=(0.36, 2.75), method="baseline").index_set()
        for method in ("transform", "quad", "cutting"):
            assert query.run(ratios=(0.36, 2.75), method=method).index_set() == reference

    def test_empty_dataset(self):
        query = EclipseQuery(np.empty((0, 3)))
        result = query.run(ratios=RatioVector.uniform(0.5, 2.0, 3))
        assert len(result) == 0

    def test_empty_dataset_with_known_width_accepts_ratio_pair(self):
        # A (0, 3) dataset still knows d = 3, so a plain (low, high) pair is
        # a complete specification and must not be rejected or discarded.
        query = EclipseQuery(np.empty((0, 3)))
        result = query.run(ratios=(0.5, 2.0))
        assert len(result) == 0
        assert result.ratios == RatioVector.uniform(0.5, 2.0, 3)

    def test_empty_dataset_preserves_constructor_ratios(self):
        # Seed bug: a user-supplied ratios spec was silently discarded when
        # the dataset was empty.
        query = EclipseQuery(np.empty((0, 3)), ratios=(0.5, 2.0))
        assert query.default_ratios == RatioVector.uniform(0.5, 2.0, 3)
        vector = RatioVector.uniform(0.25, 4.0, 4)
        assert EclipseQuery([], ratios=vector).default_ratios == vector

    def test_empty_dataset_result_preserves_column_count(self):
        result = EclipseQuery(np.empty((0, 5))).run(
            ratios=RatioVector.uniform(0.5, 2.0, 5)
        )
        assert result.points.shape == (0, 5)

    def test_dimensionless_empty_dataset_requires_explicit_ratio_vector(self):
        # Shape (0, 0) carries no column count, so only a RatioVector (which
        # fixes d itself) is acceptable.
        query = EclipseQuery([])
        with pytest.raises(InvalidWeightRangeError):
            query.run(ratios=(0.5, 2.0))
        with pytest.raises(InvalidWeightRangeError):
            EclipseQuery([], ratios=(0.5, 2.0))

    def test_run_indices_shortcut(self, hotels):
        assert EclipseQuery(hotels).run_indices(ratios=(0.25, 2.0)).tolist() == [0, 1, 2]

    def test_properties(self, hotels):
        query = EclipseQuery(hotels, ratios=(0.25, 2.0))
        assert query.num_points == 4
        assert query.dimensions == 2
        assert query.default_ratios is not None


class TestEclipseResult:
    def test_len_iter_and_index_set(self, hotels):
        result = EclipseQuery(hotels).run(ratios=(0.25, 2.0))
        assert len(result) == 3
        assert result.index_set() == {0, 1, 2}
        assert len(list(iter(result))) == 3

    def test_points_match_indices(self, hotels):
        result = EclipseQuery(hotels).run(ratios=(0.25, 2.0))
        np.testing.assert_allclose(result.points, hotels[result.indices])

    def test_result_is_dataclass_frozen(self, hotels):
        result = EclipseQuery(hotels).run(ratios=(0.25, 2.0))
        with pytest.raises(AttributeError):
            result.method = "other"


class TestFunctionalHelper:
    def test_eclipse_function(self, hotels):
        points = eclipse(hotels, (0.25, 2.0))
        np.testing.assert_allclose(points, hotels[[0, 1, 2]])
