"""Tests for the Figure 4 relationships between eclipse and the other operators."""

from __future__ import annotations

from repro.core.relationships import (
    convex_hull_points,
    nearest_neighbor,
    query_relationships,
)
from repro.data.generators import generate_dataset


class TestRunningExample:
    def test_convex_hull_query_is_p1_p3(self, hotels):
        # Section II-C: the origin-view convex hull returns p1, p3 (not p4).
        hull = convex_hull_points(hotels)
        assert {tuple(p) for p in hull} == {(1.0, 6.0), (6.0, 1.0)}

    def test_nearest_neighbor(self, hotels):
        assert tuple(nearest_neighbor(hotels, [2.0, 1.0])) == (1.0, 6.0)

    def test_report_on_hotels(self, hotels, paper_ratio):
        report = query_relationships(hotels, paper_ratio, nn_weights=[2.0, 1.0])
        assert report.eclipse_within_skyline
        assert report.hull_within_skyline
        assert report.nn_within_eclipse
        assert report.nn_index == 0
        assert set(report.eclipse.tolist()) == {0, 1, 2}
        assert set(report.skyline.tolist()) == {0, 1, 2}
        assert set(report.convex_hull.tolist()) == {0, 2}


class TestContainments:
    def test_containments_hold_on_random_data(self, distribution):
        data = generate_dataset(distribution, 150, 3, seed=4)
        report = query_relationships(
            data, (0.36, 2.75), nn_weights=[1.0, 1.0, 1.0]
        )
        assert report.eclipse_within_skyline
        assert report.hull_within_skyline

    def test_nn_in_eclipse_when_weights_inside_range(self, distribution):
        data = generate_dataset(distribution, 150, 3, seed=9)
        # weights <1, 1, 1> have ratios 1, inside [0.36, 2.75].
        report = query_relationships(data, (0.36, 2.75), nn_weights=[1.0, 1.0, 1.0])
        assert report.nn_within_eclipse

    def test_nn_report_without_weights(self, hotels, paper_ratio):
        report = query_relationships(hotels, paper_ratio)
        assert report.nn_index is None
        assert report.nn_within_eclipse  # vacuously true
