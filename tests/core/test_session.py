"""Tests for the DatasetSession executor layer (repro.core.session)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import EclipseQuery
from repro.core.session import DatasetSession, index_cache_key
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.errors import AlgorithmNotSupportedError, InvalidWeightRangeError


def random_ratio_specs(rng, count, dimensions):
    """Fuzzed uniform ratio ranges with strictly positive upper bounds."""
    specs = []
    for _ in range(count):
        low = float(rng.uniform(0.05, 1.0))
        high = low + float(rng.uniform(0.05, 3.0))
        specs.append(RatioVector.uniform(low, high, dimensions))
    return specs


class TestSessionBasics:
    def test_properties(self, hotels):
        session = DatasetSession(hotels, ratios=(0.25, 2.0))
        assert session.num_points == 4
        assert session.dimensions == 2
        assert session.default_ratios == RatioVector.uniform(0.25, 2.0, 2)

    def test_run_matches_facade(self, hotels):
        session = DatasetSession(hotels)
        result = session.run(ratios=(0.25, 2.0))
        assert result.method == "transform"
        assert result.indices.tolist() == [0, 1, 2]

    def test_skyline_computed_once(self, hotels):
        session = DatasetSession(hotels)
        first = session.skyline()
        second = session.skyline()
        assert first is second
        assert session.stats.skyline_builds == 1

    def test_empty_dataset_batch(self):
        session = DatasetSession(np.empty((0, 3)))
        results = session.run_batch([(0.5, 2.0), (0.25, 1.0)])
        assert [len(r) for r in results] == [0, 0]
        assert all(r.points.shape == (0, 3) for r in results)

    def test_empty_spec_list(self, hotels):
        assert DatasetSession(hotels).run_batch([]) == []

    def test_unknown_index_kwarg_rejected_eagerly(self, hotels):
        with pytest.raises(AlgorithmNotSupportedError):
            DatasetSession(hotels, index_kwargs={"capactiy": 8})

    def test_dimensionless_empty_dataset_requires_ratio_vector(self):
        with pytest.raises(InvalidWeightRangeError):
            DatasetSession([], ratios=(0.5, 2.0))


class TestIndexCache:
    def test_same_parameters_reuse_the_index(self, hotels):
        session = DatasetSession(hotels)
        assert session.index_for("quadtree") is session.index_for("quadtree")
        assert session.stats.index_builds == 1

    def test_backend_parameters_are_part_of_the_key(self):
        # Seed bug: the facade cached indexes by backend name only, so a
        # changed capacity/max_ratio/dense_threshold silently reused a stale
        # index.  Every parameter must produce a distinct cache entry.
        data = generate_dataset("anti", 80, 3, seed=7)
        session = DatasetSession(data)
        default = session.index_for("quadtree")
        assert session.index_for("quadtree", capacity=4) is not default
        assert session.index_for("quadtree", max_ratio=16.0) is not default
        assert session.index_for("quadtree", dense_threshold=2) is not default
        assert session.index_for("quadtree", seed=99) is not default
        assert session.stats.index_builds == 5
        # ...and explicitly passing a default maps onto the cached default.
        assert session.index_for("quadtree", capacity=None) is default

    def test_facade_honours_index_kwargs_in_cache(self):
        data = generate_dataset("anti", 60, 3, seed=3)
        small = EclipseQuery(data, capacity=2).build_index("quad")
        large = EclipseQuery(data, capacity=64).build_index("quad")
        assert small.intersection_index.tree.capacity == 2
        assert large.intersection_index.tree.capacity == 64

    def test_index_for_rejects_scan_methods(self, hotels):
        with pytest.raises(AlgorithmNotSupportedError):
            DatasetSession(hotels).index_for("transform")

    def test_cache_key_normalises_defaults(self):
        assert index_cache_key("quadtree", {}) == index_cache_key(
            "quadtree", {"capacity": None, "seed": 0}
        )
        assert index_cache_key("quadtree", {}) != index_cache_key(
            "quadtree", {"capacity": 8}
        )


class TestBatchSharedWork:
    def test_transform_batch_builds_artifacts_exactly_once(self):
        # The acceptance contract of the batch executor: >= 50 ratio specs,
        # one skyline, one corner-score matrix, results identical to
        # independent facade queries.
        data = generate_dataset("anti", 1500, 3, seed=11)
        rng = np.random.default_rng(42)
        specs = random_ratio_specs(rng, 50, 3)

        session = DatasetSession(data)
        results = session.run_batch(specs, method="transform")
        assert session.stats.skyline_builds == 1
        assert session.stats.corner_matrix_builds == 1
        assert session.stats.index_builds == 0
        assert session.stats.queries == 50

        for ratio_vector, result in zip(specs, results):
            independent = EclipseQuery(data).run(
                ratios=ratio_vector, method="transform"
            )
            assert np.array_equal(result.indices, independent.indices)
            assert result.method == "transform"

    def test_index_batch_builds_index_exactly_once(self):
        data = generate_dataset("anti", 1500, 3, seed=11)
        rng = np.random.default_rng(43)
        specs = random_ratio_specs(rng, 50, 3)

        session = DatasetSession(data)
        results = session.run_batch(specs, method="quad")
        assert session.stats.skyline_builds == 1
        assert session.stats.index_builds == 1
        assert session.stats.queries == 50

        for ratio_vector, result in zip(specs, results):
            independent = EclipseQuery(data).run(ratios=ratio_vector, method="quad")
            assert np.array_equal(result.indices, independent.indices)

    def test_shared_session_reuses_artifacts_across_batches(self):
        # transform batch then index batch on one session: the raw skyline
        # is computed once for both.
        data = generate_dataset("anti", 800, 3, seed=5)
        rng = np.random.default_rng(44)
        specs = random_ratio_specs(rng, 25, 3)
        session = DatasetSession(data)
        session.run_batch(specs, method="transform")
        session.run_batch(specs, method="cutting")
        assert session.stats.artifact_counts() == (1, 1, 1)
        assert session.stats.batches == 2

    @pytest.mark.parametrize("method", ["auto", "transform", "quad", "cutting"])
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_fuzzed_batch_parity(self, method, dimensions):
        rng = np.random.default_rng(dimensions * 100 + len(method))
        data = generate_dataset("anti", 300, dimensions, seed=dimensions)
        specs = random_ratio_specs(rng, 8, dimensions)
        session = DatasetSession(data)
        results = session.run_batch(specs, method=method)
        for ratio_vector, result in zip(specs, results):
            independent = EclipseQuery(data).run(ratios=ratio_vector, method=method)
            # `auto` may resolve to different methods for the batch and the
            # one-shot runs; all methods return identical eclipse sets.
            assert np.array_equal(result.indices, independent.indices)

    def test_index_batch_issues_one_batched_probe(self, monkeypatch):
        # The index branch of run_batch must go through the batched probe
        # (one order-vector GEMM + one tree traversal for the whole batch),
        # not through per-query lookups.
        from repro.index.eclipse_index import EclipseIndex as _EI

        calls = {"many": 0, "single": 0}
        orig_many = _EI.query_indices_many
        orig_single = _EI.query_indices

        def spy_many(self, specs):
            calls["many"] += 1
            return orig_many(self, specs)

        def spy_single(self, ratios):
            calls["single"] += 1
            return orig_single(self, ratios)

        monkeypatch.setattr(_EI, "query_indices_many", spy_many)
        monkeypatch.setattr(_EI, "query_indices", spy_single)
        data = generate_dataset("anti", 400, 3, seed=11)
        session = DatasetSession(data)
        specs = random_ratio_specs(np.random.default_rng(7), 10, 3)
        session.run_batch(specs, method="quad")
        assert calls["many"] == 1
        assert calls["single"] == 0
        assert session.stats.queries == 10

    def test_auto_index_batch_falls_back_on_degenerate_data(self):
        # Collinear points: every intersection hyperplane is a coincident
        # duplicate, so tree index builds raise DegenerateHyperplaneError.
        # An auto batch must transparently fall back to the transformation;
        # an explicitly pinned index method must surface the error.
        from repro.errors import DegenerateHyperplaneError

        t = np.arange(40, dtype=float)
        data = np.array([5.0, 5.0, 5.0]) + t[:, None] * np.array([1.0, -1.0, 0.5])
        specs = [RatioVector.uniform(0.4, 2.2, 3), RatioVector.uniform(0.7, 1.6, 3)]

        session = DatasetSession(data)
        plan = session.plan(method="auto", num_queries=len(specs))
        if plan.uses_index:  # the cost model must actually pick an index
            results = session.run_batch(specs, method="auto")
            expected = DatasetSession(data).run_batch(specs, method="transform")
            for got, want in zip(results, expected):
                assert np.array_equal(got.indices, want.indices)
                assert got.method == "transform"
            # last_plan reflects what actually ran, not the doomed index.
            assert session.last_plan.method == "transform"
            assert session.stats.index_builds == 0
            # The failed configuration is memoised: a second batch must not
            # re-attempt the build, and index_for fails instantly.
            session.run_batch(specs, method="auto")
            with pytest.raises(DegenerateHyperplaneError):
                session.index_for(plan.index_backend or "cutting")
        with pytest.raises(DegenerateHyperplaneError):
            DatasetSession(data).run_batch(specs, method="cutting")

    def test_baseline_batch_matches_independent_runs(self):
        data = generate_dataset("inde", 150, 3, seed=2)
        specs = [RatioVector.uniform(0.5, 2.0, 3), RatioVector.uniform(0.2, 1.1, 3)]
        session = DatasetSession(data)
        results = session.run_batch(specs, method="baseline")
        for ratio_vector, result in zip(specs, results):
            independent = EclipseQuery(data).run(
                ratios=ratio_vector, method="baseline"
            )
            assert np.array_equal(result.indices, independent.indices)
            assert result.method == "baseline"

    def test_zero_upper_bound_disables_prefilter_but_stays_exact(self):
        # A high bound of zero makes a corner weight zero, for which the
        # raw-space skyline prefilter is unsound; the batch must detect it
        # and still return the per-query transform answer.
        data = generate_dataset("inde", 120, 3, seed=9)
        specs = [
            RatioVector.from_bounds([0.0, 0.5], [0.0, 2.0]),
            RatioVector.uniform(0.5, 2.0, 3),
        ]
        session = DatasetSession(data)
        results = session.run_batch(specs, method="transform")
        assert session.stats.corner_matrix_builds == 0
        for ratio_vector, result in zip(specs, results):
            independent = EclipseQuery(data).run(
                ratios=ratio_vector, method="transform"
            )
            assert np.array_equal(result.indices, independent.indices)

    def test_baseline_batch_never_computes_the_skyline(self):
        # A pinned baseline batch uses neither the skyline nor an index, so
        # the session must not pay for either.
        data = generate_dataset("anti", 200, 3, seed=4)
        session = DatasetSession(data)
        session.run_batch([(0.5, 2.0), (0.2, 1.1)], method="baseline")
        assert session.stats.artifact_counts() == (0, 0, 0)

    def test_index_skyline_method_override_is_honoured(self):
        # An explicit skyline_method index parameter must reach the build
        # instead of being shadowed by the session's memoised auto skyline.
        data = generate_dataset("anti", 120, 3, seed=6)
        session = DatasetSession(data, index_kwargs={"skyline_method": "bnl"})
        auto_session = DatasetSession(data)
        index = session.index_for("quadtree")
        np.testing.assert_array_equal(
            index.skyline_indices, auto_session.index_for("quadtree").skyline_indices
        )
        # The override bypasses the session's memoised skyline entirely.
        assert session.stats.skyline_builds == 0

    def test_batch_plan_recorded(self):
        data = generate_dataset("anti", 400, 3, seed=1)
        session = DatasetSession(data)
        session.run_batch(random_ratio_specs(np.random.default_rng(0), 30, 3))
        assert session.last_plan is not None
        assert session.last_plan.num_queries == 30
        assert session.last_plan.num_skyline == int(session.skyline().size)


class TestFacadeShim:
    def test_facade_exposes_session(self, hotels):
        query = EclipseQuery(hotels)
        assert query.session.num_points == 4
        query.run(ratios=(0.25, 2.0), method="quad")
        assert query.session.stats.index_builds == 1

    def test_facade_explain(self, hotels):
        plan = EclipseQuery(hotels).explain(num_queries=10)
        assert plan.num_queries == 10
        assert "eclipse query plan" in plan.explain()
