"""Session-level tests of the budgeted index advisor (PR 8).

The contract under test: whatever the advisor decides — skip a build,
evict a cached index, bound the degenerate-failure cache — every answer a
budgeted session returns is byte-identical to an unbounded session's, and
the resident accounting never exceeds the configured budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import DatasetSession
from repro.data.generators import generate_dataset
from repro.errors import DegenerateHyperplaneError
from repro.perf.advisor import FAILURE_ENTRY_BYTES

from tests.core.test_session import random_ratio_specs


TINY = 16 * 1024          # below any index footprint: everything evicts
GENEROUS = 64 * 1024 * 1024


def assert_batches_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g.indices, w.indices)
        np.testing.assert_array_equal(g.points, w.points)


@pytest.fixture
def collinear():
    # Every point on one line: quadtree/cutting builds raise
    # DegenerateHyperplaneError, feeding the failure cache.
    t = np.arange(40, dtype=float)
    return np.array([5.0, 5.0, 5.0]) + t[:, None] * np.array([1.0, -1.0, 0.5])


class TestEvictionParity:
    @pytest.mark.parametrize("method", ["quad", "cutting", "auto"])
    def test_mixed_stream_byte_identical_under_tiny_budget(self, method):
        rng = np.random.default_rng(42)
        data = generate_dataset("ANTI", 500, 3, seed=11)
        budgeted = DatasetSession(data, index_budget_bytes=TINY)
        reference = DatasetSession(data)
        for _ in range(5):
            specs = random_ratio_specs(rng, 10, 3)
            assert_batches_equal(
                budgeted.run_batch(specs, method=method),
                reference.run_batch(specs, method=method),
            )
            # Enforcement runs after every batch and update: the exact
            # rollup must sit at or under the budget at every point.
            assert budgeted.stats.advisor_bytes_resident <= TINY
            inserts = rng.uniform(0.0, 10.0, size=(12, 3))
            deletes = rng.choice(budgeted.num_points, size=4, replace=False)
            budgeted.apply_updates(inserts=inserts, deletes=deletes)
            reference.apply_updates(inserts=inserts, deletes=deletes)
        # Tiny budget: the advisor declines every build — auto because the
        # improvement ratio cannot justify the bytes, pinned (PR 9) because
        # the projected bytes do not fit the budget at all — and each batch
        # falls back to the exact transformation, never caching an index.
        assert budgeted.stats.index_builds_skipped > 0
        assert budgeted.stats.index_builds == 0

    def test_generous_budget_keeps_and_delta_patches(self):
        rng = np.random.default_rng(7)
        data = generate_dataset("ANTI", 500, 3, seed=3)
        budgeted = DatasetSession(data, index_budget_bytes=GENEROUS)
        reference = DatasetSession(data)
        for _ in range(4):
            specs = random_ratio_specs(rng, 8, 3)
            assert_batches_equal(
                budgeted.run_batch(specs, method="quad"),
                reference.run_batch(specs, method="quad"),
            )
            inserts = rng.uniform(0.0, 10.0, size=(10, 3))
            budgeted.apply_updates(inserts=inserts, deletes=[0, 1])
            reference.apply_updates(inserts=inserts, deletes=[0, 1])
        # Everything fits: nothing is evicted, the one cached index is kept
        # across updates (patched, not rebuilt) — patch-after-keep.
        assert budgeted.stats.index_evictions == 0
        assert budgeted.stats.index_builds == reference.stats.index_builds
        assert budgeted.stats.advisor_bytes_resident > 0
        assert budgeted.stats.advisor_bytes_resident <= GENEROUS

    def test_rebuild_after_evict_serves_same_answers(self):
        # Direct index construction (index_for) is not admission-gated, so
        # it still exercises the build → evict → rebuild cycle under a
        # budget too small to retain the index; batch answers meanwhile
        # stay byte-identical on the declined-admission transform path.
        data = generate_dataset("ANTI", 400, 3, seed=9)
        specs = random_ratio_specs(np.random.default_rng(1), 6, 3)
        budgeted = DatasetSession(data, index_budget_bytes=TINY)
        reference = DatasetSession(data)
        for _ in range(3):  # build → evict → rebuild, three times over
            budgeted.index_for("cutting")
            assert len(budgeted._indexes) == 0  # evicted on enforcement
            assert_batches_equal(
                budgeted.run_batch(specs, method="cutting"),
                reference.run_batch(specs, method="cutting"),
            )
        assert budgeted.stats.index_builds == 3
        assert budgeted.stats.index_evictions == 3

    def test_pinned_admission_declines_oversized_but_admits_fitting(self):
        # PR 9: pinned methods answer through the advisor's byte checks.
        # A budget the projected index cannot fit → declined, transform
        # fallback, no build; a generous budget → built exactly once even
        # though the improvement-ratio heuristic (waived for pinned) might
        # have said no.
        data = generate_dataset("ANTI", 400, 3, seed=9)
        specs = random_ratio_specs(np.random.default_rng(4), 4, 3)
        tiny = DatasetSession(data, index_budget_bytes=TINY)
        tiny.run_batch(specs, method="cutting")
        assert tiny.stats.index_builds == 0
        assert tiny.stats.index_builds_skipped > 0
        tiny_single = DatasetSession(data, index_budget_bytes=TINY)
        tiny_single.run(ratios=specs[0], method="cutting")
        assert tiny_single.stats.index_builds == 0
        assert tiny_single.stats.index_builds_skipped > 0
        roomy = DatasetSession(data, index_budget_bytes=GENEROUS)
        roomy.run_batch(specs, method="cutting")
        assert roomy.stats.index_builds == 1
        assert roomy.stats.index_builds_skipped == 0
        # Answers agree across all three admission outcomes.
        reference = DatasetSession(data)
        want = reference.run_batch(specs, method="cutting")
        assert_batches_equal(tiny.run_batch(specs, method="cutting"), want)
        assert_batches_equal(roomy.run_batch(specs, method="cutting"), want)


class TestAdvisorTelemetry:
    def test_counters_flow_into_stats(self):
        data = generate_dataset("ANTI", 400, 3, seed=5)
        session = DatasetSession(data, index_budget_bytes=TINY)
        specs = random_ratio_specs(np.random.default_rng(2), 20, 3)
        session.run_batch(specs, method="auto")
        session.run_batch(specs, method="auto")
        stats = session.stats
        assert stats.cost_requests > 0
        assert stats.cache_hits > 0  # second identical batch hits the memo
        assert stats.cost_requests >= stats.cache_hits
        assert stats.advisor_bytes_resident <= TINY

    def test_unbounded_session_never_skips_or_evicts(self):
        data = generate_dataset("ANTI", 400, 3, seed=5)
        session = DatasetSession(data)
        specs = random_ratio_specs(np.random.default_rng(2), 20, 3)
        session.run_batch(specs, method="auto")
        session.run_batch(specs, method="quad")
        assert session.stats.index_builds_skipped == 0
        assert session.stats.index_evictions == 0


class TestDegenerateCacheBounded:
    def test_failure_cache_bounded_under_budget(self, collinear):
        budget = FAILURE_ENTRY_BYTES * 4
        session = DatasetSession(collinear, index_budget_bytes=budget)
        for seed in range(16):
            with pytest.raises(DegenerateHyperplaneError):
                session.index_for("quadtree", seed=seed)
        # Sixteen distinct cache keys failed, but the ledger holds the
        # memoised-failure set to the budget.
        assert len(session._degenerate_index_keys) <= 4
        assert session.stats.advisor_bytes_resident <= budget

    def test_failure_cache_unbounded_without_budget(self, collinear):
        session = DatasetSession(collinear)
        for seed in range(16):
            with pytest.raises(DegenerateHyperplaneError):
                session.index_for("quadtree", seed=seed)
        assert len(session._degenerate_index_keys) == 16

    def test_kept_failures_still_memoise(self, collinear):
        session = DatasetSession(
            collinear, index_budget_bytes=FAILURE_ENTRY_BYTES * 4
        )
        with pytest.raises(DegenerateHyperplaneError):
            session.index_for("quadtree")
        before = session.stats.index_builds
        with pytest.raises(DegenerateHyperplaneError):
            session.index_for("quadtree")  # memoised: no second attempt
        assert session.stats.index_builds == before


class TestBudgetKnobPlumbing:
    def test_constructor_validates(self, hotels):
        with pytest.raises(ValueError):
            DatasetSession(hotels, index_budget_bytes=0)
        with pytest.raises(ValueError):
            DatasetSession(hotels, index_budget_bytes=-1)

    def test_env_var_applies_when_no_explicit_budget(self, hotels, monkeypatch):
        # The session stores only the *explicit* budget; the environment is
        # resolved at enforcement time, so a changed env var takes effect
        # without reconstructing long-lived sessions.
        monkeypatch.setenv("REPRO_INDEX_BUDGET_MB", "3")
        session = DatasetSession(hotels)
        assert session.index_budget_bytes is None
        assert session.advisor.effective_budget() == 3 * 1024 * 1024

    def test_explicit_budget_beats_env(self, hotels, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BUDGET_MB", "3")
        session = DatasetSession(hotels, index_budget_bytes=1024)
        assert session.index_budget_bytes == 1024
        assert session.advisor.effective_budget() == 1024

    def test_configure_kernels_rewires_live_advisor(self, hotels, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        session = DatasetSession(hotels, index_budget_bytes=1024)
        advisor = session.advisor
        session.configure_kernels(index_budget_bytes=2048)
        assert session.index_budget_bytes == 2048
        assert advisor.budget_bytes == 2048  # same advisor, new budget

    def test_snapshot_roundtrip_then_service_config_wins(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        data = generate_dataset("CORR", 200, 3, seed=4)
        specs = random_ratio_specs(np.random.default_rng(3), 5, 3)
        session = DatasetSession(data, index_budget_bytes=5 * 1024 * 1024)
        want = session.run_batch(specs, method="quad")
        path = str(tmp_path / "state.snapshot")
        session.save_snapshot(path)
        restored, _ = DatasetSession.load_snapshot(path)
        # A plain load keeps the snapshot-era budget...
        assert restored.index_budget_bytes == 5 * 1024 * 1024
        # ...but the PR 7 warm-restart convention reapplies the service's
        # configuration, which wins over whatever the snapshot carried.
        restored.configure_kernels(index_budget_bytes=TINY)
        assert restored.index_budget_bytes == TINY
        assert_batches_equal(restored.run_batch(specs, method="quad"), want)
        assert restored.stats.advisor_bytes_resident <= TINY
