"""Tests for the dynamic dataset core (DatasetSession.apply_updates)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import MAX_DEAD_FRACTION, plan_update
from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.errors import DegenerateHyperplaneError, DimensionMismatchError


def random_specs(rng, count, dims):
    specs = []
    for _ in range(count):
        low = float(rng.uniform(0.05, 1.0))
        specs.append(RatioVector.uniform(low, low + float(rng.uniform(0.1, 3.0)), dims))
    return specs


class TestApplyUpdatesBasics:
    def test_noop_batch_keeps_generation(self, hotels):
        session = DatasetSession(hotels)
        report = session.apply_updates()
        assert report.generation == 0
        assert session.generation == 0
        assert session.stats.update_batches == 0

    def test_data_composition_matches_numpy(self, hotels):
        session = DatasetSession(hotels)
        inserts = np.array([[2.0, 2.0], [9.0, 9.0]])
        session.apply_updates(inserts=inserts, deletes=[1])
        expected = np.vstack([np.delete(hotels, [1], axis=0), inserts])
        assert np.array_equal(session.data, expected)
        assert session.generation == 1

    def test_insert_dimension_mismatch_rejected(self, hotels):
        session = DatasetSession(hotels)
        with pytest.raises(DimensionMismatchError):
            session.apply_updates(inserts=np.ones((1, 3)))

    def test_updates_clear_degenerate_memo(self):
        t = np.arange(40, dtype=float)
        data = np.array([5.0, 5.0, 5.0]) + t[:, None] * np.array([1.0, -1.0, 0.5])
        session = DatasetSession(data)
        with pytest.raises(DegenerateHyperplaneError):
            session.index_for("cutting")
        # Replacing the collinear cloud with generic points must allow a
        # fresh build: the memoised degeneracy belongs to the old dataset.
        rng = np.random.default_rng(0)
        session.apply_updates(
            inserts=rng.uniform(0, 10, size=(30, 3)),
            deletes=np.arange(40),
        )
        index = session.index_for("cutting")
        assert index.num_points == 30


class TestDynamicParityFuzz:
    @pytest.mark.parametrize("method", ["auto", "transform", "quadtree", "cutting"])
    @pytest.mark.parametrize("dims", [2, 3])
    def test_incremental_session_byte_identical_to_rebuilt(self, method, dims):
        rng = np.random.default_rng(dims * 7 + len(method))
        data = rng.uniform(0, 10, size=(int(rng.integers(25, 80)), dims))
        session = DatasetSession(data, index_kwargs={"capacity": 4})
        specs = random_specs(rng, 3, dims)
        session.run_batch(specs, method=method)  # warm every artifact
        for step in range(4):
            num_deletes = int(rng.integers(0, max(1, session.num_points // 4)))
            deletes = (
                rng.choice(session.num_points, size=num_deletes, replace=False)
                if num_deletes
                else None
            )
            num_inserts = int(rng.integers(0, 12))
            inserts = (
                rng.uniform(0, 10, size=(num_inserts, dims)) if num_inserts else None
            )
            session.apply_updates(inserts=inserts, deletes=deletes)
            if session.num_points == 0:
                break
            rebuilt = DatasetSession(
                session.data.copy(), index_kwargs={"capacity": 4}
            )
            got = session.run_batch(specs, method=method)
            want = rebuilt.run_batch(specs, method=method)
            for g, w in zip(got, want):
                assert np.array_equal(g.indices, w.indices), (method, dims, step)

    def test_single_queries_also_match_after_updates(self):
        rng = np.random.default_rng(23)
        data = rng.uniform(0, 10, size=(60, 3))
        session = DatasetSession(data)
        session.run_batch(random_specs(rng, 4, 3))
        session.apply_updates(
            inserts=rng.uniform(0, 10, size=(9, 3)), deletes=[0, 5, 7]
        )
        rebuilt = DatasetSession(session.data.copy())
        for spec in random_specs(rng, 5, 3):
            for method in ("transform", "cutting", "baseline"):
                assert np.array_equal(
                    session.run_indices(spec, method=method),
                    rebuilt.run_indices(spec, method=method),
                )


class TestSharedSkylineIsolation:
    def test_two_cached_indexes_update_independently(self):
        # Regression: indexes built from the session's memoised skyline must
        # copy it — delete_points remaps its slot->position array in place,
        # and a shared ndarray would let the first index's remap corrupt
        # both the second index and the session's cached skyline.
        rng = np.random.default_rng(12)
        # Big enough that the update cost arm picks in-place maintenance
        # (a toy dataset's skyline rebuild is genuinely cheaper).
        data = rng.uniform(0, 10, size=(4000, 3))
        session = DatasetSession(data)
        specs = random_specs(rng, 3, 3)
        session.run_batch(specs, method="quadtree")
        session.run_batch(specs, method="cutting")
        assert session.stats.index_builds == 2
        report = session.apply_updates(
            inserts=rng.uniform(0, 10, size=(6, 3)), deletes=[0, 3, 8, 9]
        )
        assert report.skyline_plan.inplace
        assert report.index_updates == 2
        rebuilt = DatasetSession(session.data.copy())
        for method in ("quadtree", "cutting", "transform"):
            for g, w in zip(
                session.run_batch(specs, method=method),
                rebuilt.run_batch(specs, method=method),
            ):
                assert np.array_equal(g.indices, w.indices), method


class TestUpdateStatsAndGenerations:
    def test_inplace_updates_keep_artifacts_warm(self):
        rng = np.random.default_rng(3)
        data = generate_dataset("inde", 3000, 3, seed=0)
        session = DatasetSession(data)
        specs = random_specs(rng, 8, 3)
        session.run_batch(specs, method="cutting")
        assert session.stats.artifact_counts() == (1, 0, 1)
        report = session.apply_updates(
            inserts=rng.uniform(0, 1, size=(4, 3)), deletes=[0, 1]
        )
        assert report.skyline_plan is not None and report.skyline_plan.inplace
        assert report.index_updates == 1 and report.index_invalidations == 0
        session.run_batch(specs, method="cutting")
        # No artifact was rebuilt: the update maintained them in place.
        assert session.stats.artifact_counts() == (1, 0, 1)
        assert session.stats.skyline_inplace_updates == 1
        assert session.stats.index_inplace_updates == 1
        assert session.stats.inserts_applied == 4
        assert session.stats.deletes_applied == 2
        assert session.stats.rebuilds_triggered == 0
        assert session.generation == 1

    def test_huge_batch_recomputes_and_delta_patches_cached_indexes(self):
        data = generate_dataset("inde", 500, 3, seed=1)
        session = DatasetSession(data)
        session.run_batch(random_specs(np.random.default_rng(0), 6, 3), method="cutting")
        report = session.apply_updates(
            inserts=generate_dataset("inde", 20_000, 3, seed=2)
        )
        assert report.skyline_plan is not None
        assert report.skyline_plan.strategy == "rebuild"
        assert session.stats.rebuilds_triggered >= 1
        # The skyline recompute happened eagerly (counted as a build) so
        # the cached index could be patched with the membership diff
        # instead of being dropped (PR 4 dropped every cached index here).
        assert session.stats.skyline_builds == 2
        assert report.skyline_added >= 0 and report.skyline_removed >= 0
        assert (
            report.index_delta_patches + report.index_invalidations >= 1
        )
        builds_before = session.stats.skyline_builds
        results = session.run_batch(
            random_specs(np.random.default_rng(1), 6, 3), method="cutting"
        )
        # Nothing stale was left behind: the next batch reuses the
        # recomputed skyline as-is.
        assert session.stats.skyline_builds == builds_before
        rebuilt = DatasetSession(session.data.copy())
        for got, want in zip(
            results,
            rebuilt.run_batch(random_specs(np.random.default_rng(1), 6, 3), method="cutting"),
        ):
            assert np.array_equal(got.indices, want.indices)

    def test_stale_skyline_without_indexes_recomputed_lazily(self):
        data = generate_dataset("inde", 500, 3, seed=1)
        session = DatasetSession(data)
        session.skyline()
        report = session.apply_updates(
            inserts=generate_dataset("inde", 20_000, 3, seed=2)
        )
        # No cached index to patch: the rebuild decision leaves the tag
        # stale and the recompute happens lazily on the next access.
        assert report.skyline_plan is not None
        assert report.skyline_plan.strategy == "rebuild"
        assert report.skyline_added == -1
        assert session.stats.artifact_invalidations >= 1
        builds_before = session.stats.skyline_builds
        session.run_batch(random_specs(np.random.default_rng(1), 6, 3))
        assert session.stats.skyline_builds == builds_before + 1

    def test_generation_tags_invalidate_stale_indexes(self):
        data = generate_dataset("inde", 400, 3, seed=4)
        session = DatasetSession(data)
        session.index_for("cutting")
        # Deleting most of the dataset makes any incremental path dearer
        # than recomputing over the 50 survivors, so the update cost model
        # invalidates instead of maintaining.
        report = session.apply_updates(deletes=np.arange(350))
        if report.index_invalidations:
            builds = session.stats.index_builds
            session.index_for("cutting")
            assert session.stats.index_builds == builds + 1

    def test_degenerate_update_falls_back_in_auto_batches(self):
        rng = np.random.default_rng(6)
        data = rng.uniform(4.0, 10.0, size=(60, 3))
        session = DatasetSession(data, index_kwargs={"capacity": 4})
        specs = random_specs(rng, 6, 3)
        first = session.run_batch(specs, method="auto")
        if session.last_plan.method not in ("quadtree", "cutting"):
            pytest.skip("cost model did not pick an index for this shape")
        # Collinear arrivals that dominate the whole cloud: the in-place
        # index update must fail with DegenerateHyperplaneError internally,
        # drop the index, and the next auto batch must fall back to the
        # transformation (the fresh build memoises the degeneracy).
        t = np.arange(50, dtype=float) * 0.01
        arrivals = np.array([1.0, 3.0, 2.0]) + t[:, None] * np.array(
            [1.0, -1.0, 0.5]
        )
        report = session.apply_updates(inserts=arrivals)
        assert report.index_invalidations >= 1
        results = session.run_batch(specs, method="auto")
        assert session.last_plan.method == "transform"
        rebuilt = DatasetSession(session.data.copy())
        expected = rebuilt.run_batch(specs, method="transform")
        for got, want in zip(results, expected):
            assert np.array_equal(got.indices, want.indices)
        with pytest.raises(DegenerateHyperplaneError):
            session.index_for("cutting")


class TestPlanUpdateArm:
    def test_small_batch_prefers_inplace(self):
        plan = plan_update(50_000, 3, 8, 8, num_skyline=200, artifact="skyline")
        assert plan.inplace

    def test_full_replacement_prefers_rebuild(self):
        plan = plan_update(1000, 3, 1000, 1000, num_skyline=50, artifact="skyline")
        assert plan.strategy == "rebuild"

    def test_dead_fraction_triggers_compaction(self):
        plan = plan_update(
            10_000,
            3,
            1,
            1,
            num_skyline=100,
            artifact="index",
            index_backend="cutting",
            dead_fraction=MAX_DEAD_FRACTION + 0.1,
            num_pairs=9000,
        )
        # Reclaiming the arenas is mandatory above the threshold, and the
        # in-place compaction pass undercuts re-enumerating and re-indexing
        # every pair by a wide margin.
        assert plan.strategy == "compact"
        assert plan.inplace and plan.compacts
        assert "dead slot fraction" in plan.reason

    def test_dead_fraction_falls_back_to_rebuild_when_patch_is_huge(self):
        # A churn so large that the incremental pass alone dwarfs a fresh
        # build: compaction cannot save it, the plan must say rebuild.
        plan = plan_update(
            1_000,
            3,
            500,
            500,
            num_skyline=60,
            artifact="index",
            index_backend="cutting",
            dead_fraction=MAX_DEAD_FRACTION + 0.2,
            num_pairs=5_000,
        )
        assert plan.strategy == "rebuild"
        assert not plan.inplace
        assert "dead slot fraction" in plan.reason

    def test_index_update_cheaper_than_quadtree_rebuild(self):
        plan = plan_update(
            20_000,
            4,
            5,
            5,
            num_skyline=400,
            artifact="index",
            index_backend="quadtree",
        )
        assert plan.inplace

    def test_unknown_artifact_rejected(self):
        from repro.errors import AlgorithmNotSupportedError

        with pytest.raises(AlgorithmNotSupportedError):
            plan_update(10, 2, 1, 1, artifact="corner-matrix")


class TestEmptySessionGrowth:
    def test_grow_from_empty_dataset(self):
        session = DatasetSession(np.empty((0, 3)))
        session.index_for("cutting")  # degenerate empty index, cached
        rng = np.random.default_rng(8)
        session.apply_updates(inserts=rng.uniform(0, 10, size=(25, 3)))
        rebuilt = DatasetSession(session.data.copy())
        spec = RatioVector.uniform(0.4, 2.0, 3)
        assert np.array_equal(
            session.run_indices(spec, method="cutting"),
            rebuilt.run_indices(spec, method="cutting"),
        )

    def test_drain_and_refill(self):
        rng = np.random.default_rng(9)
        data = rng.uniform(0, 10, size=(20, 3))
        session = DatasetSession(data)
        session.run_batch([RatioVector.uniform(0.3, 2.0, 3)], method="cutting")
        session.apply_updates(deletes=np.arange(20))
        assert session.num_points == 0
        assert session.run_batch([RatioVector.uniform(0.3, 2.0, 3)]) != []
        session.apply_updates(inserts=rng.uniform(0, 10, size=(15, 3)))
        rebuilt = DatasetSession(session.data.copy())
        spec = RatioVector.uniform(0.5, 1.8, 3)
        for method in ("transform", "cutting"):
            assert np.array_equal(
                session.run_indices(spec, method=method),
                rebuilt.run_indices(spec, method=method),
            )


class TestUpdateValidation:
    """Hostile inputs must fail loudly, before any state changes."""

    def test_nan_inserts_rejected(self, hotels):
        from repro.errors import InvalidDatasetError

        session = DatasetSession(hotels)
        with pytest.raises(InvalidDatasetError, match="finite"):
            session.apply_updates(inserts=np.array([[1.0, np.nan]]))
        assert session.generation == 0
        assert session.num_points == hotels.shape[0]

    def test_infinite_inserts_rejected(self, hotels):
        from repro.errors import InvalidDatasetError

        session = DatasetSession(hotels)
        for bad in (np.inf, -np.inf):
            with pytest.raises(InvalidDatasetError, match="finite"):
                session.apply_updates(inserts=np.array([[bad, 2.0]]))
        assert session.generation == 0

    def test_dimension_mismatch_rejected(self, hotels):
        session = DatasetSession(hotels)
        with pytest.raises(DimensionMismatchError):
            session.apply_updates(inserts=np.ones((2, 5)))
        assert session.generation == 0

    def test_out_of_range_deletes_rejected(self, hotels):
        session = DatasetSession(hotels)
        for bad in ([99], [-1]):
            with pytest.raises(Exception):
                session.apply_updates(deletes=np.array(bad))
        assert session.num_points == hotels.shape[0]

    def test_failed_batch_leaves_queries_unaffected(self, hotels, paper_ratio):
        from repro.errors import InvalidDatasetError

        session = DatasetSession(hotels)
        want = session.run_indices(paper_ratio)
        with pytest.raises(InvalidDatasetError):
            session.apply_updates(inserts=np.array([[np.nan, np.nan]]))
        assert np.array_equal(session.run_indices(paper_ratio), want)
