"""Tests for the transformation-based eclipse algorithms (TRAN)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import eclipse_baseline_indices
from repro.core.transform import (
    eclipse_transform_indices,
    map_to_corner_scores,
    map_to_intercept_space,
)
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.errors import (
    AlgorithmNotSupportedError,
    DimensionMismatchError,
    InvalidWeightRangeError,
)


class TestCornerScoreMapping:
    def test_shape(self):
        data = generate_dataset("inde", 50, 4, seed=1)
        ratios = RatioVector.uniform(0.5, 2.0, 4)
        assert map_to_corner_scores(data, ratios).shape == (50, 8)

    def test_values_are_corner_scores(self, hotels, paper_ratio):
        mapped = map_to_corner_scores(hotels, paper_ratio)
        corners = paper_ratio.corner_weight_vectors()
        np.testing.assert_allclose(mapped, hotels @ corners.T)

    def test_empty_dataset(self):
        ratios = RatioVector.uniform(0.5, 2.0, 3)
        assert map_to_corner_scores(np.empty((0, 3)), ratios).shape == (0, 4)

    def test_dimension_mismatch(self, hotels):
        with pytest.raises(DimensionMismatchError):
            map_to_corner_scores(hotels, RatioVector.uniform(0.5, 2.0, 3))


class TestInterceptMapping:
    def test_paper_example_values(self, hotels, paper_ratio):
        mapped = map_to_intercept_space(hotels, paper_ratio)
        np.testing.assert_allclose(
            mapped, [[4.0, 6.25], [6.0, 5.0], [6.5, 2.5], [10.5, 7.0]]
        )

    def test_rejects_zero_upper_bound(self, hotels):
        with pytest.raises(InvalidWeightRangeError):
            map_to_intercept_space(hotels, RatioVector.uniform(0.0, 0.0, 2))

    def test_two_dimensional_equivalence_with_corner_mapping(self):
        data = generate_dataset("anti", 200, 2, seed=9)
        ratios = RatioVector.uniform(0.3, 3.0, 2)
        via_intercept = eclipse_transform_indices(data, ratios, mapping="intercept")
        via_corner = eclipse_transform_indices(data, ratios, mapping="corner")
        assert via_intercept.tolist() == via_corner.tolist()

    def test_high_d_intercept_mapping_is_subset_of_true_result(self):
        """Reproduction finding: Algorithm 3's mapping can under-report.

        The d selected corner vectors used by the intercept mapping do not
        imply dominance on the remaining 2^{d-1} - d corners, so its result
        is a subset of the true eclipse set (never a superset).
        """
        for seed in range(5):
            data = generate_dataset("inde", 150, 4, seed=seed)
            ratios = RatioVector.uniform(0.36, 2.75, 4)
            truth = set(eclipse_baseline_indices(data, ratios).tolist())
            via_intercept = set(
                eclipse_transform_indices(data, ratios, mapping="intercept").tolist()
            )
            assert via_intercept <= truth

    def test_high_d_intercept_mapping_counterexample_exists(self):
        """At least one seed exhibits a strict subset (the documented gap)."""
        strict = False
        for seed in range(8):
            data = generate_dataset("inde", 200, 4, seed=seed)
            ratios = RatioVector.uniform(0.36, 2.75, 4)
            truth = set(eclipse_baseline_indices(data, ratios).tolist())
            via_intercept = set(
                eclipse_transform_indices(data, ratios, mapping="intercept").tolist()
            )
            if via_intercept < truth:
                strict = True
                break
        assert strict, "expected the intercept mapping to drop at least one point"


class TestEclipseTransform:
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_matches_baseline(self, distribution, dimensions):
        data = generate_dataset(distribution, 120, dimensions, seed=5)
        ratios = RatioVector.uniform(0.36, 2.75, dimensions)
        expected = eclipse_baseline_indices(data, ratios).tolist()
        assert eclipse_transform_indices(data, ratios).tolist() == expected

    def test_skyline_instantiation(self):
        data = generate_dataset("anti", 150, 3, seed=2)
        ratios = RatioVector.skyline(3)
        from repro.skyline.api import skyline_indices

        assert (
            eclipse_transform_indices(data, ratios).tolist()
            == skyline_indices(data).tolist()
        )

    def test_1nn_instantiation(self):
        data = generate_dataset("inde", 150, 3, seed=2)
        ratios = RatioVector.exact([0.8, 1.3])
        from repro.knn.linear import nearest_neighbor_index

        result = eclipse_transform_indices(data, ratios)
        nn = nearest_neighbor_index(data, [0.8, 1.3, 1.0])
        assert nn in result.tolist()
        # Every returned point must tie the optimum score (no strictly better point).
        scores = data @ np.array([0.8, 1.3, 1.0])
        assert np.allclose(scores[result], scores.min())

    def test_zero_ratio_range_supported_by_corner_mapping(self):
        # [0, 0] ranges mean "ignore that attribute"; the corner mapping
        # handles them while the intercept mapping cannot.
        data = generate_dataset("inde", 80, 3, seed=4)
        ratios = RatioVector.from_bounds([0.0, 0.5], [0.0, 2.0])
        expected = eclipse_baseline_indices(data, ratios).tolist()
        assert eclipse_transform_indices(data, ratios).tolist() == expected

    def test_unknown_mapping(self, hotels, paper_ratio):
        with pytest.raises(AlgorithmNotSupportedError):
            eclipse_transform_indices(hotels, paper_ratio, mapping="bogus")

    def test_empty_dataset(self):
        ratios = RatioVector.uniform(0.5, 2.0, 3)
        assert eclipse_transform_indices(np.empty((0, 3)), ratios).size == 0

    def test_single_point(self):
        ratios = RatioVector.uniform(0.5, 2.0, 2)
        assert eclipse_transform_indices([[1.0, 2.0]], ratios).tolist() == [0]

    def test_duplicates_all_kept(self):
        data = np.array([[1.0, 1.0], [1.0, 1.0], [3.0, 3.0]])
        ratios = RatioVector.uniform(0.5, 2.0, 2)
        assert eclipse_transform_indices(data, ratios).tolist() == [0, 1]
