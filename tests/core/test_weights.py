"""Tests for attribute weight-ratio ranges and their user-facing helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.weights import (
    RATIO_INFINITY,
    ImportanceCategory,
    RatioVector,
    WeightRange,
    angle_range_to_ratio_range,
    category_to_ratio_range,
    make_ratio_vector,
    ratio_range_to_angle_range,
    weight_interval_to_ratio_range,
)
from repro.errors import InvalidWeightRangeError


class TestWeightRange:
    def test_valid_range(self):
        rng = WeightRange(0.25, 2.0)
        assert rng.low == 0.25
        assert rng.high == 2.0
        assert rng.width == pytest.approx(1.75)

    def test_degenerate_range_is_1nn(self):
        assert WeightRange(2.0, 2.0).is_degenerate

    def test_unbounded_range_is_skyline(self):
        assert WeightRange(0.0, math.inf).is_unbounded

    def test_infinite_high_clamped(self):
        assert WeightRange(0.0, math.inf).high == RATIO_INFINITY

    def test_contains(self):
        rng = WeightRange(0.25, 2.0)
        assert rng.contains(1.0)
        assert rng.contains(0.25)
        assert rng.contains(2.0)
        assert not rng.contains(2.1)
        assert not rng.contains(0.2)

    def test_dual_query_interval(self):
        assert WeightRange(0.25, 2.0).dual_query_interval() == (-2.0, -0.25)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(InvalidWeightRangeError):
            WeightRange(2.0, 1.0)

    def test_rejects_negative_bounds(self):
        with pytest.raises(InvalidWeightRangeError):
            WeightRange(-0.5, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(InvalidWeightRangeError):
            WeightRange(float("nan"), 1.0)

    def test_rejects_infinite_low(self):
        with pytest.raises(InvalidWeightRangeError):
            WeightRange(math.inf, math.inf)


class TestRatioVector:
    def test_uniform_builds_d_minus_1_ranges(self):
        rv = RatioVector.uniform(0.25, 2.0, 4)
        assert rv.num_ratios == 3
        assert rv.dimensions == 4
        assert all(r.low == 0.25 and r.high == 2.0 for r in rv)

    def test_uniform_requires_at_least_two_dimensions(self):
        with pytest.raises(InvalidWeightRangeError):
            RatioVector.uniform(0.25, 2.0, 1)

    def test_exact_is_1nn_instantiation(self):
        rv = RatioVector.exact([2.0, 0.5])
        assert rv.is_exact
        assert not rv.is_skyline

    def test_skyline_instantiation(self):
        rv = RatioVector.skyline(3)
        assert rv.is_skyline
        assert not rv.is_exact

    def test_from_weight_vector_normalises(self):
        rv = RatioVector.from_weight_vector([2.0, 4.0, 2.0])
        np.testing.assert_allclose(rv.lows, [1.0, 2.0])
        np.testing.assert_allclose(rv.highs, [1.0, 2.0])

    def test_from_weight_vector_rejects_zero_last_weight(self):
        with pytest.raises(InvalidWeightRangeError):
            RatioVector.from_weight_vector([1.0, 0.0])

    def test_from_categories(self):
        rv = RatioVector.from_categories([ImportanceCategory.SIMILAR])
        low, high = category_to_ratio_range(ImportanceCategory.SIMILAR)
        assert rv[0].low == pytest.approx(low)
        assert rv[0].high == pytest.approx(high)

    def test_corner_weight_vectors_shape_and_content(self):
        rv = RatioVector.from_bounds([0.25, 0.5], [2.0, 3.0])
        corners = rv.corner_weight_vectors()
        assert corners.shape == (4, 3)
        # All-lows first, all-highs last, trailing 1 everywhere.
        np.testing.assert_allclose(corners[0], [0.25, 0.5, 1.0])
        np.testing.assert_allclose(corners[-1], [2.0, 3.0, 1.0])
        np.testing.assert_allclose(corners[:, -1], 1.0)

    def test_corner_count_is_two_to_the_d_minus_1(self):
        for d in (2, 3, 4, 5):
            rv = RatioVector.uniform(0.5, 2.0, d)
            assert rv.corner_weight_vectors().shape == (2 ** (d - 1), d)

    def test_selected_domination_vectors(self):
        rv = RatioVector.from_bounds([0.25, 0.5], [2.0, 3.0])
        selected = rv.selected_domination_vectors()
        assert selected.shape == (3, 3)
        np.testing.assert_allclose(selected[0], [0.25, 0.5, 1.0])
        np.testing.assert_allclose(selected[1], [2.0, 0.5, 1.0])
        np.testing.assert_allclose(selected[2], [0.25, 3.0, 1.0])

    def test_widen(self):
        rv = RatioVector.uniform(0.5, 2.0, 2).widen(2.0)
        assert rv[0].low == pytest.approx(0.25)
        assert rv[0].high == pytest.approx(4.0)

    def test_widen_rejects_factor_below_one(self):
        with pytest.raises(InvalidWeightRangeError):
            RatioVector.uniform(0.5, 2.0, 2).widen(0.5)

    def test_contains(self):
        rv = RatioVector.from_bounds([0.25, 0.5], [2.0, 3.0])
        assert rv.contains([1.0, 1.0])
        assert not rv.contains([3.0, 1.0])
        assert not rv.contains([1.0])

    def test_equality_and_hash(self):
        a = RatioVector.uniform(0.25, 2.0, 3)
        b = RatioVector.uniform(0.25, 2.0, 3)
        c = RatioVector.uniform(0.25, 3.0, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_empty_rejected(self):
        with pytest.raises(InvalidWeightRangeError):
            RatioVector([])


class TestConversions:
    def test_weight_interval_to_ratio_range(self):
        low, high = weight_interval_to_ratio_range(0.3, 0.5)
        assert low == pytest.approx(0.3 / 0.7)
        assert high == pytest.approx(1.0)

    def test_weight_interval_validation(self):
        with pytest.raises(InvalidWeightRangeError):
            weight_interval_to_ratio_range(0.8, 0.2)

    def test_angle_roundtrip(self):
        low, high = 0.36, 2.75
        angle_low, angle_high = ratio_range_to_angle_range(low, high)
        back_low, back_high = angle_range_to_ratio_range(angle_low, angle_high)
        assert back_low == pytest.approx(low, rel=1e-9)
        assert back_high == pytest.approx(high, rel=1e-9)

    def test_table4_angles_match_table4_ratios(self):
        # Table IV pairs each ratio setting with an angle setting.
        pairs = [
            ((0.18, 5.67), (100, 170)),
            ((0.36, 2.75), (110, 160)),
            ((0.58, 1.73), (120, 150)),
            ((0.84, 1.19), (130, 140)),
        ]
        for (low, high), (angle_low, angle_high) in pairs:
            computed_low, computed_high = ratio_range_to_angle_range(low, high)
            assert computed_low == pytest.approx(angle_low, abs=1.0)
            assert computed_high == pytest.approx(angle_high, abs=1.0)

    def test_angle_validation(self):
        with pytest.raises(InvalidWeightRangeError):
            angle_range_to_ratio_range(80, 170)

    def test_category_rejects_non_category(self):
        with pytest.raises(InvalidWeightRangeError):
            category_to_ratio_range("similar")


class TestMakeRatioVector:
    def test_none_gives_skyline(self):
        assert make_ratio_vector(None, 3).is_skyline

    def test_pair_applied_uniformly(self):
        rv = make_ratio_vector((0.25, 2.0), 4)
        assert rv.num_ratios == 3
        assert all(r.low == 0.25 for r in rv)

    def test_existing_vector_passthrough(self):
        rv = RatioVector.uniform(0.5, 1.5, 3)
        assert make_ratio_vector(rv, 3) is rv

    def test_existing_vector_dimension_mismatch(self):
        rv = RatioVector.uniform(0.5, 1.5, 3)
        with pytest.raises(InvalidWeightRangeError):
            make_ratio_vector(rv, 4)

    def test_list_of_pairs(self):
        rv = make_ratio_vector([(0.1, 1.0), (0.2, 2.0)], 3)
        np.testing.assert_allclose(rv.lows, [0.1, 0.2])
        np.testing.assert_allclose(rv.highs, [1.0, 2.0])

    def test_categories(self):
        rv = make_ratio_vector(
            [ImportanceCategory.IMPORTANT, ImportanceCategory.SIMILAR], 3
        )
        assert rv.num_ratios == 2

    def test_wrong_number_of_ranges(self):
        with pytest.raises(InvalidWeightRangeError):
            make_ratio_vector([(0.1, 1.0)], 4)

    def test_single_weight_range(self):
        rng = WeightRange(0.5, 1.5)
        rv = make_ratio_vector(rng, 3)
        assert rv.num_ratios == 2
        assert rv[0] == rng
