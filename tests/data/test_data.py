"""Tests for the data substrate: generators, dataset container, NBA, worst case."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.generators import (
    generate_anticorrelated,
    generate_correlated,
    generate_dataset,
    generate_independent,
)
from repro.data.nba import (
    NBA_ATTRIBUTES,
    NBA_NUM_PLAYERS,
    generate_nba_dataset,
    nba_minimization_points,
)
from repro.data.worst_case import generate_worst_case
from repro.errors import (
    AlgorithmNotSupportedError,
    DimensionMismatchError,
    InvalidDatasetError,
)
from repro.skyline.api import skyline_indices


class TestGenerators:
    @pytest.mark.parametrize(
        "generator", [generate_independent, generate_correlated, generate_anticorrelated]
    )
    def test_shape_and_bounds(self, generator):
        data = generator(500, 4, seed=0)
        assert data.shape == (500, 4)
        assert np.all(data >= 0.0) and np.all(data <= 1.0)

    @pytest.mark.parametrize(
        "generator", [generate_independent, generate_correlated, generate_anticorrelated]
    )
    def test_deterministic_given_seed(self, generator):
        np.testing.assert_allclose(generator(50, 3, seed=5), generator(50, 3, seed=5))

    def test_correlation_structure(self):
        corr = np.corrcoef(generate_correlated(4000, 2, seed=1).T)[0, 1]
        anti = np.corrcoef(generate_anticorrelated(4000, 2, seed=1).T)[0, 1]
        assert corr > 0.5
        assert anti < -0.3

    def test_skyline_sizes_reflect_distributions(self):
        """ANTI produces far more skyline points than CORR (the paper's premise)."""
        corr = skyline_indices(generate_correlated(2000, 3, seed=2)).size
        inde = skyline_indices(generate_independent(2000, 3, seed=2)).size
        anti = skyline_indices(generate_anticorrelated(2000, 3, seed=2)).size
        assert corr <= inde <= anti
        assert anti > 3 * corr

    def test_dispatch_by_name(self):
        for name in ("INDE", "CORR", "ANTI", "independent", "correlated"):
            assert generate_dataset(name, 10, 2, seed=0).shape == (10, 2)

    def test_unknown_name(self):
        with pytest.raises(AlgorithmNotSupportedError):
            generate_dataset("zipf", 10, 2)

    def test_validation(self):
        with pytest.raises(InvalidDatasetError):
            generate_independent(-1, 2)
        with pytest.raises(InvalidDatasetError):
            generate_independent(10, 0)

    def test_empty(self):
        assert generate_anticorrelated(0, 3).shape == (0, 3)


class TestDataset:
    def test_orientation_conversion(self):
        dataset = Dataset(
            values=np.array([[10.0, 1.0], [5.0, 3.0]]),
            attribute_names=["points", "price"],
            larger_is_better=[True, False],
        )
        converted = dataset.to_minimization()
        np.testing.assert_allclose(converted[:, 0], [0.0, 5.0])
        np.testing.assert_allclose(converted[:, 1], [1.0, 3.0])

    def test_normalized_range(self):
        dataset = Dataset(values=np.array([[10.0, 1.0], [5.0, 3.0], [0.0, 2.0]]))
        normalized = dataset.normalized()
        assert normalized.min() >= 0.0 and normalized.max() <= 1.0

    def test_constant_attribute_normalises_to_zero(self):
        dataset = Dataset(values=np.array([[1.0, 5.0], [2.0, 5.0]]))
        assert np.all(dataset.normalized()[:, 1] == 0.0)

    def test_subset_and_labels(self):
        dataset = Dataset(
            values=np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
            labels=["a", "b", "c"],
        )
        sub = dataset.subset([2, 0])
        assert sub.labels == ["c", "a"]
        assert sub.label_of(0) == "c"
        assert dataset.label_of(1) == "b"

    def test_default_attribute_names(self):
        dataset = Dataset(values=np.ones((2, 3)))
        assert dataset.attribute_names == ["attr_1", "attr_2", "attr_3"]

    def test_describe(self):
        text = Dataset(values=np.ones((2, 2)), name="demo").describe()
        assert "demo" in text and "attr_1" in text

    def test_validation(self):
        with pytest.raises(DimensionMismatchError):
            Dataset(values=np.ones((2, 2)), attribute_names=["only_one"])
        with pytest.raises(InvalidDatasetError):
            Dataset(values=np.ones((2, 2)), labels=["just_one"])


class TestNBADataset:
    def test_shape_and_attributes(self):
        dataset = generate_nba_dataset()
        assert dataset.num_points == NBA_NUM_PLAYERS
        assert dataset.dimensions == 5
        assert dataset.attribute_names == list(NBA_ATTRIBUTES)
        assert all(dataset.larger_is_better)

    def test_values_are_nonnegative_integers(self):
        values = generate_nba_dataset(n=200).values
        assert np.all(values >= 0)
        np.testing.assert_allclose(values, np.round(values))

    def test_attributes_positively_correlated(self):
        values = generate_nba_dataset().values
        corr = np.corrcoef(values.T)
        off_diagonal = corr[~np.eye(5, dtype=bool)]
        assert np.all(off_diagonal > 0.2)

    def test_minimization_helper(self):
        data = nba_minimization_points(n=500, dimensions=3)
        assert data.shape == (500, 3)
        assert np.all(data >= 0.0) and np.all(data <= 1.0)

    def test_deterministic(self):
        a = generate_nba_dataset(seed=7).values
        b = generate_nba_dataset(seed=7).values
        np.testing.assert_allclose(a, b)

    def test_small_skyline_like_correlated_data(self):
        """Correlated career stats imply a small skyline — the NBA data's role."""
        data = nba_minimization_points(n=1000, dimensions=3)
        assert skyline_indices(data).size < 100


class TestWorstCase:
    def test_all_points_are_skyline_points(self):
        data = generate_worst_case(100, 3, seed=0)
        assert skyline_indices(data).size == 100

    def test_intersections_cluster(self):
        """The dual intersections concentrate near x = -slope (the worst case)."""
        from repro.geometry.dual import dual_hyperplanes
        from repro.geometry.hyperplane import pairwise_intersections

        data = generate_worst_case(30, 2, slope=1.0, curvature=1e-3, seed=1)
        xs = [p.x_coordinate() for p in pairwise_intersections(dual_hyperplanes(data))]
        assert np.std(xs) < 0.05
        assert abs(np.mean(xs) + 1.0) < 0.05

    def test_positive_last_coordinate(self):
        data = generate_worst_case(200, 4, seed=2)
        assert np.all(data[:, -1] > 0)

    def test_validation(self):
        with pytest.raises(InvalidDatasetError):
            generate_worst_case(10, 1)
        with pytest.raises(InvalidDatasetError):
            generate_worst_case(10, 3, curvature=0.0)

    def test_empty(self):
        assert generate_worst_case(0, 3).shape == (0, 3)
