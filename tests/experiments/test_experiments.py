"""Tests for the experiment harness, table/figure runners, and the user study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.experiments.figures import (
    run_impact_of_d,
    run_impact_of_n,
    run_impact_of_ratio,
    run_worst_case_d,
    run_worst_case_n,
)
from repro.experiments.harness import (
    ALGORITHMS,
    AlgorithmTiming,
    ExperimentResult,
    full_sweep_enabled,
    time_algorithms,
    time_callable,
)
from repro.experiments.report import render_series_table, render_simple_table
from repro.experiments.tables import (
    PAPER_TABLE7,
    run_count_vs_d,
    run_count_vs_n,
    run_count_vs_ratio,
)
from repro.experiments.user_study import PAPER_TABLE5, SYSTEMS, run_user_study


class TestHarness:
    def test_time_callable_measures_something(self):
        assert time_callable(lambda: sum(range(1000))) >= 0.0

    def test_time_algorithms_runs_all_four(self):
        data = generate_dataset("inde", 100, 3, seed=0)
        ratios = RatioVector.uniform(0.36, 2.75, 3)
        timings = time_algorithms(data, ratios)
        assert {t.algorithm for t in timings} == set(ALGORITHMS)
        sizes = {t.result_size for t in timings}
        assert len(sizes) == 1  # all algorithms agree on the result size

    def test_baseline_limit_skips_base(self):
        data = generate_dataset("inde", 100, 3, seed=0)
        ratios = RatioVector.uniform(0.36, 2.75, 3)
        timings = time_algorithms(data, ratios, baseline_limit=10)
        assert "BASE" not in {t.algorithm for t in timings}

    def test_experiment_result_accumulates(self):
        result = ExperimentResult(name="demo", parameter="n")
        result.add(10, [AlgorithmTiming("TRAN", 0.1, 3)])
        result.add(20, [AlgorithmTiming("TRAN", 0.2, 4)])
        assert result.series("TRAN") == [0.1, 0.2]
        assert result.result_sizes("TRAN") == [3, 4]
        assert "TRAN" in result.to_text()

    def test_full_sweep_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SWEEP", raising=False)
        assert not full_sweep_enabled()
        monkeypatch.setenv("REPRO_FULL_SWEEP", "1")
        assert full_sweep_enabled()

    def test_total_seconds_includes_build(self):
        timing = AlgorithmTiming("QUAD", 0.5, 3, build_seconds=1.0)
        assert timing.total_seconds == pytest.approx(1.5)


class TestReport:
    def test_simple_table_alignment(self):
        text = render_simple_table("t", ["a", "bb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "30" in text

    def test_series_table(self):
        text = render_series_table(
            "fig", "n", [128, 256], {"TRAN": [0.1, 0.2], "QUAD": [0.01]}
        )
        assert "TRAN" in text and "QUAD" in text and "-" in text


class TestCountTables:
    def test_table6_small_sweep(self):
        result = run_count_vs_n(n_values=[64, 256], trials=3, seed=0)
        assert len(result.values) == 2
        assert all(count >= 1 for count in result.counts)
        assert "Table VI" in result.to_text()

    def test_table7_monotone_in_d(self):
        result = run_count_vs_d(d_values=(2, 3, 4), n=256, trials=4, seed=0)
        assert result.counts[0] < result.counts[-1]
        assert set(result.values) <= set(PAPER_TABLE7) | {2, 3, 4}

    def test_table8_monotone_in_range_width(self):
        result = run_count_vs_ratio(n=256, trials=4, seed=0)
        # Wider ranges (first row) return at least as many points as narrow
        # ones (last row) — the trend of Table VIII.
        assert result.counts[0] >= result.counts[-1]


class TestFigureRunners:
    def test_figure10_orders_algorithms(self):
        # The vectorised BASE pushed the BASE/QUAD crossover well past the
        # seed's n=256, so the largest n must be big enough for the quadratic
        # baseline to lose to the index-backed query again.
        result = run_impact_of_n(
            dataset="INDE", n_values=[256, 2048], dimensions=3
        )
        assert set(result.timings) == set(ALGORITHMS)
        # The index-based query is faster than the baseline at the largest n.
        assert result.series("QUAD")[-1] < result.series("BASE")[-1]

    def test_figure11_runs_across_dimensions(self):
        result = run_impact_of_d(dataset="CORR", d_values=(2, 3), n=128)
        assert result.values == [2, 3]
        assert len(result.series("TRAN")) == 2

    def test_figure12_ratio_sweep(self):
        result = run_impact_of_ratio(dataset="INDE", n=256, dimensions=3)
        assert len(result.values) == 4
        assert set(result.timings) == {"QUAD", "CUTTING"}

    def test_figure13_worst_case(self):
        result = run_worst_case_n(n_values=[64, 128], dimensions=3)
        assert set(result.timings) == {"QUAD", "CUTTING"}
        assert len(result.series("CUTTING")) == 2

    def test_figure14_worst_case_dimensions(self):
        result = run_worst_case_d(d_values=(3, 4), n=64)
        assert result.values == [3, 4]

    def test_nba_dataset_runner(self):
        result = run_impact_of_n(
            dataset="NBA", n_values=[300], dimensions=3, algorithms=["TRAN", "QUAD"]
        )
        assert set(result.timings) == {"TRAN", "QUAD"}


class TestUserStudy:
    def test_counts_sum_to_respondents(self):
        result = run_user_study(respondents=61, seed=17)
        assert sum(result.counts.values()) == 61
        assert set(result.counts) == set(SYSTEMS)

    def test_eclipse_category_preferred(self):
        """The qualitative outcome of Table V: the category system wins."""
        result = run_user_study(respondents=61, seed=17)
        assert result.preferred_system == "eclipse-category"

    def test_deterministic_given_seed(self):
        assert run_user_study(seed=3).counts == run_user_study(seed=3).counts

    def test_render(self):
        text = run_user_study(seed=1).to_text()
        assert "Table V" in text
        for system in SYSTEMS:
            assert system in text

    def test_paper_reference_counts_recorded(self):
        assert sum(PAPER_TABLE5.values()) == 61
