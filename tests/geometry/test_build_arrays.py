"""Equivalence tests for the array-native (kernelised) index build path.

Every ``from_arrays`` entry point must produce exactly the structures the
object-based constructors produce — the kernelisation is a pure
representation change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.geometry.arrangement2d import Arrangement2D
from repro.geometry.boxes import Box
from repro.geometry.dual import dual_coefficient_arrays, dual_hyperplanes
from repro.geometry.hyperplane import (
    pairwise_intersection_arrays,
    pairwise_intersection_arrays_from,
)
from repro.index.eclipse_index import EclipseIndex
from repro.index.intersection import IntersectionIndex
from repro.index.order_vector import OrderVectorIndex
from repro.skyline.api import skyline_indices


class TestDualCoefficientArrays:
    def test_matches_object_path(self):
        data = generate_dataset("anti", 40, 3, seed=1)
        coeffs, offsets = dual_coefficient_arrays(data)
        duals = dual_hyperplanes(data)
        np.testing.assert_array_equal(
            coeffs, np.array([h.coefficients for h in duals])
        )
        np.testing.assert_array_equal(offsets, np.array([h.offset for h in duals]))

    def test_empty_dataset(self):
        coeffs, offsets = dual_coefficient_arrays(np.empty((0, 3)))
        assert coeffs.shape == (0, 2)
        assert offsets.shape == (0,)


class TestPairwiseIntersectionArraysFrom:
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_matches_object_path(self, dimensions):
        data = generate_dataset("inde", 30, dimensions, seed=2)
        duals = dual_hyperplanes(data)
        expected = pairwise_intersection_arrays(duals)
        coeffs, offsets = dual_coefficient_arrays(data)
        got = pairwise_intersection_arrays_from(coeffs, offsets)
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_blocked_enumeration_is_order_identical(self):
        # Force many tiny chunks through the memory cap; the row-major
        # (i < j) output order must be unchanged.
        rng = np.random.default_rng(0)
        coeffs = rng.random((60, 2))
        offsets = rng.random(60)
        full = pairwise_intersection_arrays_from(coeffs, offsets)
        chunked = pairwise_intersection_arrays_from(
            coeffs, offsets, memory_cap=4096
        )
        for f, c in zip(full, chunked):
            np.testing.assert_array_equal(f, c)

    def test_custom_indices_reported_in_pairs(self):
        coeffs = np.array([[1.0], [2.0], [3.0]])
        offsets = np.array([0.0, 1.0, 2.0])
        ids = np.array([7, 11, 13])
        pairs, _, _ = pairwise_intersection_arrays_from(coeffs, offsets, indices=ids)
        assert pairs.tolist() == [[7, 11], [7, 13], [11, 13]]

    def test_degenerate_pairs_skipped(self):
        coeffs = np.array([[1.0], [1.0], [2.0]])
        offsets = np.array([0.0, 1.0, 2.0])
        pairs, _, _ = pairwise_intersection_arrays_from(coeffs, offsets)
        # The parallel pair (0, 1) is dropped.
        assert pairs.tolist() == [[0, 2], [1, 2]]


class TestArrangementFromArrays:
    def test_matches_object_path(self):
        data = generate_dataset("anti", 25, 2, seed=3)
        duals = dual_hyperplanes(data)
        legacy = Arrangement2D(duals)
        coeffs, offsets = dual_coefficient_arrays(data)
        kernelised = Arrangement2D.from_arrays(coeffs[:, 0], offsets)

        np.testing.assert_array_equal(legacy.boundaries, kernelised.boundaries)
        assert legacy.num_intervals == kernelised.num_intervals
        for a, b in zip(legacy.intervals, kernelised.intervals):
            assert a.start == b.start and a.end == b.end
            np.testing.assert_array_equal(a.order_vector, b.order_vector)
        legacy_pairs = [(i.first, i.second, i.x_coordinate()) for i in legacy.intersections]
        kernel_pairs = [
            (i.first, i.second, i.x_coordinate()) for i in kernelised.intersections
        ]
        assert legacy_pairs == kernel_pairs

    def test_dense_and_lazy_agree(self):
        data = generate_dataset("inde", 20, 2, seed=4)
        coeffs, offsets = dual_coefficient_arrays(data)
        dense = Arrangement2D.from_arrays(coeffs[:, 0], offsets, dense_threshold=1000)
        lazy = Arrangement2D.from_arrays(coeffs[:, 0], offsets, dense_threshold=1)
        assert dense.is_dense and not lazy.is_dense
        for x in (-3.0, -1.0, -0.25, 0.5):
            np.testing.assert_array_equal(
                dense.order_vector_at(x), lazy.order_vector_at(x)
            )

    def test_intersections_in_range_matches_legacy(self):
        data = generate_dataset("anti", 15, 2, seed=5)
        duals = dual_hyperplanes(data)
        legacy = Arrangement2D(duals)
        coeffs, offsets = dual_coefficient_arrays(data)
        kernelised = Arrangement2D.from_arrays(coeffs[:, 0], offsets)
        for low, high in ((-2.75, -0.36), (-10.0, 0.0), (0.0, 5.0)):
            a = [(i.first, i.second) for i in legacy.intersections_in_range(low, high)]
            b = [
                (i.first, i.second)
                for i in kernelised.intersections_in_range(low, high)
            ]
            assert a == b


class TestIndexFromArrays:
    @pytest.mark.parametrize("backend", ["scan", "quadtree", "cutting"])
    def test_intersection_index_matches_object_path(self, backend):
        data = generate_dataset("anti", 25, 3, seed=6)
        duals = dual_hyperplanes(data)
        legacy = IntersectionIndex(duals, backend=backend)
        coeffs, offsets = dual_coefficient_arrays(data)
        kernelised = IntersectionIndex.from_arrays(coeffs, offsets, backend=backend)
        assert legacy.num_pairs == kernelised.num_pairs
        box = Box(np.full(2, -2.75), np.full(2, -0.36))
        legacy_pairs = {tuple(p) for p in legacy.candidates(box).pairs}
        kernel_pairs = {tuple(p) for p in kernelised.candidates(box).pairs}
        assert legacy_pairs == kernel_pairs

    def test_order_vector_index_matches_object_path(self):
        data = generate_dataset("inde", 30, 2, seed=7)
        duals = dual_hyperplanes(data)
        legacy = OrderVectorIndex(duals)
        coeffs, offsets = dual_coefficient_arrays(data)
        kernelised = OrderVectorIndex.from_arrays(coeffs, offsets)
        box = Box(np.array([-2.0]), np.array([-0.5]))
        a = legacy.initial_state(box)
        b = kernelised.initial_state(box)
        np.testing.assert_array_equal(a.counts, b.counts)
        np.testing.assert_array_equal(a.values, b.values)

    def test_eclipse_index_with_precomputed_skyline(self):
        data = generate_dataset("anti", 200, 3, seed=8)
        sky = skyline_indices(data)
        ratios = RatioVector.uniform(0.36, 2.75, 3)
        fresh = EclipseIndex(backend="quadtree").build(data)
        precomputed = EclipseIndex(backend="quadtree").build(data, skyline_idx=sky)
        np.testing.assert_array_equal(
            fresh.query_indices(ratios), precomputed.query_indices(ratios)
        )
        np.testing.assert_array_equal(
            fresh.skyline_indices, precomputed.skyline_indices
        )
