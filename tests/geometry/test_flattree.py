"""Build-parity tests: the flattened tree engine vs slow recursive builders.

The flattened engine (``repro.geometry.flattree``) must produce the same
*structures* as the per-node recursive builders it replaced, not only the
same (exact, post-filtered) query answers.  This module keeps two slow
reference builders around purely for these tests:

* :class:`ReferenceQuadtree` — a faithful copy of the PR 2 recursive
  quadtree builder (midpoint ``2^k`` splits, "any child strictly smaller"
  rollback, depth cap).
* :class:`ReferenceCutting` — the cutting strategy executed one node at a
  time with an explicit breadth-first queue, consuming the random generator
  in the same frontier order as the flattened build and applying the same
  load-reduction rollback rule.

Membership semantics: for ``k >= 2`` a cell holds the hyperplanes whose
exact box-intersection mask is true (the flattened engine replicates the
kernel's interval arithmetic bit for bit, so the comparison is exact).  For
``k = 1`` the flattened engine represents each hyperplane by its point
``x = rhs / coefficient`` and partitions a coordinate-sorted arena, so the
references use the same quotient-containment rule (a point on a cell
boundary belongs to both neighbouring cells); query *answers* remain
mask-exact either way because leaf candidates are post-filtered.

Structural parity is asserted on leaf partitions (as ``(depth, index set)``
multisets), tree depth, node count and maximum leaf load, plus query-result
equality, across fuzzed random hyperplane sets in two to four dimensions.
Budget-bound builds are exercised separately (the flattened engine spends a
binding node budget cheapest-cells-first rather than in depth-first order,
so only the budget invariant itself is compared there).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DegenerateHyperplaneError
from repro.geometry.boxes import Box
from repro.geometry.cutting import CuttingTree
from repro.geometry.dual import dual_hyperplanes
from repro.geometry.flattree import auto_capacity
from repro.geometry.hyperplane import (
    hyperplanes_intersect_box_mask,
    pairwise_intersection_arrays,
)
from repro.geometry.quadtree import LineQuadtree


def make_hyperplanes(n_points: int, dimensions: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    duals = dual_hyperplanes(rng.random((n_points, dimensions)) + 0.05)
    return pairwise_intersection_arrays(duals)


def domain(dual_dims: int, max_ratio: float = 10.0) -> Box:
    return Box(np.full(dual_dims, -max_ratio), np.zeros(dual_dims))


# ----------------------------------------------------------------------
# Reference builders (slow, per-node)
# ----------------------------------------------------------------------
class _RefNode:
    __slots__ = ("box", "indices", "children", "depth")

    def __init__(self, box: Box, indices: np.ndarray, depth: int):
        self.box = box
        self.indices = indices
        self.children: Optional[List["_RefNode"]] = None
        self.depth = depth


def _membership(coefficients, rhs, indices, box, quotients):
    """Cell membership: exact mask for k >= 2, quotient containment for k = 1."""
    if quotients is None:
        mask = hyperplanes_intersect_box_mask(
            coefficients[indices], rhs[indices], box
        )
        return indices[mask]
    q = quotients[indices]
    return indices[(q >= box.lows[0]) & (q <= box.highs[0])]


class _ReferenceTree:
    """Shared reference scaffolding: node store, stats, query."""

    def __init__(self, coefficients, rhs, dom, capacity):
        self.coefficients = np.asarray(coefficients, dtype=float)
        self.rhs = np.asarray(rhs, dtype=float)
        self.domain = dom
        self.capacity = (
            auto_capacity(self.coefficients.shape[0]) if capacity is None else capacity
        )
        all_indices = np.arange(self.coefficients.shape[0], dtype=np.intp)
        in_dom = hyperplanes_intersect_box_mask(self.coefficients, self.rhs, dom)
        self.outside = all_indices[~in_dom]
        if dom.dimensions == 1:
            with np.errstate(divide="ignore", invalid="ignore"):
                q = np.where(
                    self.coefficients[:, 0] != 0,
                    self.rhs / np.where(self.coefficients[:, 0] != 0, self.coefficients[:, 0], 1.0),
                    np.nan,
                )
            self.quotients = np.clip(q, dom.lows[0], dom.highs[0])
        else:
            self.quotients = None
        self.root = _RefNode(dom, all_indices[in_dom], 0)
        self.node_count_ = 1

    # -- introspection matching the production API ----------------------
    def _leaves(self):
        out, stack = [], [self.root]
        while stack:
            node = stack.pop()
            if node.children is None:
                out.append(node)
            else:
                stack.extend(node.children)
        return out

    def leaf_partition(self):
        return sorted(
            (leaf.depth, tuple(sorted(int(i) for i in leaf.indices)))
            for leaf in self._leaves()
        )

    def depth(self):
        return max(leaf.depth for leaf in self._leaves())

    def node_count(self):
        return self.node_count_

    def max_leaf_load(self):
        return max(int(leaf.indices.size) for leaf in self._leaves())

    def query(self, box: Box) -> np.ndarray:
        collected = [self.outside]
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.box.intersects_box(box):
                continue
            if node.children is None:
                collected.append(node.indices)
            else:
                stack.extend(node.children)
        candidates = np.unique(np.concatenate(collected))
        if candidates.size == 0:
            return candidates.astype(np.intp)
        mask = hyperplanes_intersect_box_mask(
            self.coefficients[candidates], self.rhs[candidates], box
        )
        return candidates[mask]


class ReferenceQuadtree(_ReferenceTree):
    """Faithful per-node copy of the recursive PR 2 quadtree builder."""

    def __init__(self, coefficients, rhs, dom, capacity=None, max_depth=12):
        super().__init__(coefficients, rhs, dom, capacity)
        self._max_depth = max_depth
        self._build(self.root)

    def _build(self, node: _RefNode) -> None:
        if node.indices.size <= self.capacity or node.depth >= self._max_depth:
            return
        child_boxes = node.box.split()
        child_sets = [
            _membership(
                self.coefficients, self.rhs, node.indices, cb, self.quotients
            )
            for cb in child_boxes
        ]
        if not any(cs.size < node.indices.size for cs in child_sets):
            return
        node.children = [
            _RefNode(cb, cs, node.depth + 1)
            for cb, cs in zip(child_boxes, child_sets)
        ]
        self.node_count_ += len(node.children)
        node.indices = np.empty(0, dtype=np.intp)
        for child in node.children:
            self._build(child)


class ReferenceCutting(_ReferenceTree):
    """Per-node breadth-first cutting builder mirroring the flat engine.

    Consumes the random generator in frontier order (level by level, cells
    left to right) and applies the engine's load-reduction rollback: a cut
    survives only when the largest child keeps at most
    ``LOAD_REDUCTION`` of the parent's hyperplanes (and is strictly
    smaller).
    """

    LOAD_REDUCTION = 0.98
    SAMPLE_SIZE = 64

    def __init__(self, coefficients, rhs, dom, capacity=None, max_depth=32, seed=0):
        super().__init__(coefficients, rhs, dom, capacity)
        self._max_depth = max_depth
        self._rng = np.random.default_rng(seed)
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            for child in self._split(node):
                queue.append(child)

    def _sample_split_value(self, box, indices, split_dim):
        midpoint = float(box.center[split_dim])
        sample_size = min(indices.size, self.SAMPLE_SIZE)
        if sample_size == 0:
            return midpoint
        sampled = self._rng.choice(indices, size=sample_size, replace=False)
        coeffs = self.coefficients[sampled]
        rhs = self.rhs[sampled]
        center = box.center
        axis_coeff = coeffs[:, split_dim]
        usable = np.abs(axis_coeff) > 1e-12
        if not np.any(usable):
            return midpoint
        rest = rhs[usable] - (
            coeffs[usable] @ center - axis_coeff[usable] * center[split_dim]
        )
        crossings = rest / axis_coeff[usable]
        crossings = crossings[
            (crossings > box.lows[split_dim]) & (crossings < box.highs[split_dim])
        ]
        if crossings.size == 0:
            return midpoint
        return float(np.median(crossings))

    def _split(self, node: _RefNode) -> List[_RefNode]:
        if node.indices.size <= self.capacity or node.depth >= self._max_depth:
            return []
        # The sorted 1-D arena hands cells their indices in coordinate
        # order, so the reference samples from the same ordering.
        indices = node.indices
        if self.quotients is not None:
            indices = indices[np.argsort(self.quotients[indices])]
        split_dim = node.depth % node.box.dimensions
        value = self._sample_split_value(node.box, indices, split_dim)
        value = float(
            min(max(value, node.box.lows[split_dim]), node.box.highs[split_dim])
        )
        if not (node.box.lows[split_dim] < value < node.box.highs[split_dim]):
            return []
        left_box, right_box = node.box.split_at(split_dim, value)
        child_sets = [
            _membership(self.coefficients, self.rhs, node.indices, cb, self.quotients)
            for cb in (left_box, right_box)
        ]
        limit = min(
            node.indices.size - 1,
            int(np.floor(self.LOAD_REDUCTION * node.indices.size)),
        )
        if max(cs.size for cs in child_sets) > limit:
            return []
        node.children = [
            _RefNode(cb, cs, node.depth + 1)
            for cb, cs in zip((left_box, right_box), child_sets)
        ]
        self.node_count_ += 2
        node.indices = np.empty(0, dtype=np.intp)
        return node.children


def flat_leaf_partition(tree) -> list:
    return sorted(
        (depth, tuple(sorted(int(i) for i in items)))
        for depth, items in tree.core.leaf_slices()
    )


# ----------------------------------------------------------------------
# Structural parity
# ----------------------------------------------------------------------
#: Depth caps for the parity builds.  The huge default dual domain makes
#: high-d quadrant splits separate poorly, so unbounded-depth parity builds
#: would explode combinatorially; the cap applies identically to the flat
#: build and the reference, so parity is still meaningful.
PARITY_MAX_DEPTH = {1: 12, 2: 7, 3: 4}


class TestQuadtreeParity:
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    @pytest.mark.parametrize("n_points", [12, 25, 40])
    def test_structure_matches_recursive_reference(self, dimensions, n_points):
        pairs, coeffs, rhs = make_hyperplanes(n_points, dimensions, seed=n_points)
        dom = domain(dimensions - 1)
        md = PARITY_MAX_DEPTH[dimensions - 1]
        flat = LineQuadtree(
            coeffs, rhs, dom, capacity=6, max_depth=md, max_nodes=1_000_000
        )
        ref = ReferenceQuadtree(coeffs, rhs, dom, capacity=6, max_depth=md)
        assert flat.node_count() == ref.node_count()
        assert flat.depth == ref.depth()
        assert flat.max_leaf_load() == ref.max_leaf_load()
        assert flat_leaf_partition(flat) == ref.leaf_partition()

    def test_structure_matches_on_clustered_worst_case(self):
        from repro.data.worst_case import generate_worst_case

        data = generate_worst_case(40, 3, seed=1)
        duals = dual_hyperplanes(data)
        pairs, coeffs, rhs = pairwise_intersection_arrays(duals)
        dom = domain(2, max_ratio=128.0)
        flat = LineQuadtree(
            coeffs, rhs, dom, capacity=8, max_depth=7, max_nodes=1_000_000
        )
        ref = ReferenceQuadtree(coeffs, rhs, dom, capacity=8, max_depth=7)
        assert flat_leaf_partition(flat) == ref.leaf_partition()


class TestCuttingParity:
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    @pytest.mark.parametrize("n_points", [12, 25, 40])
    def test_structure_matches_bfs_reference(self, dimensions, n_points):
        pairs, coeffs, rhs = make_hyperplanes(n_points, dimensions, seed=n_points + 7)
        dom = domain(dimensions - 1)
        flat = CuttingTree(coeffs, rhs, dom, capacity=6, seed=3, max_nodes=1_000_000)
        ref = ReferenceCutting(coeffs, rhs, dom, capacity=6, seed=3)
        assert flat.node_count() == ref.node_count()
        assert flat.depth == ref.depth()
        assert flat.max_cell_load() == ref.max_leaf_load()
        assert flat_leaf_partition(flat) == ref.leaf_partition()


@given(
    seed=st.integers(min_value=0, max_value=200),
    n_points=st.integers(min_value=5, max_value=30),
    dimensions=st.integers(min_value=2, max_value=4),
    capacity=st.integers(min_value=2, max_value=12),
)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_fuzzed_structural_parity(seed, n_points, dimensions, capacity):
    """Property: flattened builds equal the per-node references everywhere."""
    pairs, coeffs, rhs = make_hyperplanes(n_points, dimensions, seed=seed)
    dom = domain(dimensions - 1)
    md = PARITY_MAX_DEPTH[dimensions - 1]
    flat_quad = LineQuadtree(
        coeffs, rhs, dom, capacity=capacity, max_depth=md, max_nodes=1_000_000
    )
    ref_quad = ReferenceQuadtree(coeffs, rhs, dom, capacity=capacity, max_depth=md)
    assert flat_leaf_partition(flat_quad) == ref_quad.leaf_partition()
    assert flat_quad.node_count() == ref_quad.node_count()
    assert flat_quad.depth == ref_quad.depth()

    flat_cut = CuttingTree(
        coeffs, rhs, dom, capacity=capacity, seed=seed, max_nodes=1_000_000
    )
    ref_cut = ReferenceCutting(coeffs, rhs, dom, capacity=capacity, seed=seed)
    assert flat_leaf_partition(flat_cut) == ref_cut.leaf_partition()
    assert flat_cut.node_count() == ref_cut.node_count()
    assert flat_cut.depth == ref_cut.depth()

    # Query parity against both the reference tree and brute force.
    rng = np.random.default_rng(seed)
    k = dimensions - 1
    for _ in range(3):
        lo = -rng.uniform(1.0, 9.0, size=k)
        hi = lo + rng.uniform(0.0, 5.0, size=k)
        box = Box(lo, np.minimum(hi, 0.0))
        expected = set(
            np.flatnonzero(hyperplanes_intersect_box_mask(coeffs, rhs, box)).tolist()
        )
        for tree in (flat_quad, flat_cut):
            assert set(tree.query(box).tolist()) == expected
        assert set(ref_quad.query(box).tolist()) == expected


# ----------------------------------------------------------------------
# Batched queries
# ----------------------------------------------------------------------
class TestQueryMany:
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_query_many_matches_per_query(self, dimensions):
        pairs, coeffs, rhs = make_hyperplanes(30, dimensions, seed=5)
        dom = domain(dimensions - 1)
        quad = LineQuadtree(coeffs, rhs, dom, capacity=8)
        cut = CuttingTree(coeffs, rhs, dom, capacity=8, seed=0)
        rng = np.random.default_rng(17)
        k = dimensions - 1
        boxes = []
        for _ in range(12):
            lo = -rng.uniform(0.5, 9.5, size=k)
            hi = np.minimum(lo + rng.uniform(0.0, 4.0, size=k), 0.0)
            boxes.append(Box(lo, hi))
        for tree in (quad, cut):
            batched = tree.query_many(boxes)
            assert len(batched) == len(boxes)
            for box, result in zip(boxes, batched):
                np.testing.assert_array_equal(result, tree.query(box))

    def test_query_many_empty_batch(self):
        pairs, coeffs, rhs = make_hyperplanes(10, 3, seed=1)
        tree = LineQuadtree(coeffs, rhs, domain(2))
        assert tree.query_many([]) == []

    def test_query_many_empty_tree(self):
        tree = LineQuadtree(np.empty((0, 2)), np.empty(0), domain(2))
        results = tree.query_many([Box(-np.ones(2), np.zeros(2))])
        assert len(results) == 1 and results[0].size == 0

    def test_query_many_dimension_mismatch(self):
        from repro.errors import DimensionMismatchError

        pairs, coeffs, rhs = make_hyperplanes(10, 3, seed=1)
        tree = LineQuadtree(coeffs, rhs, domain(2))
        with pytest.raises(DimensionMismatchError):
            tree.query_many([Box(np.array([-1.0]), np.array([0.0]))])


# ----------------------------------------------------------------------
# Shared capacity policy and degenerate detection
# ----------------------------------------------------------------------
class TestSharedPolicies:
    def test_auto_capacity_single_source(self):
        # One policy for both wrappers: the engine resolves capacity=None
        # through flattree.auto_capacity, and the wrappers carry no copy.
        assert auto_capacity(10_000) == 100
        assert auto_capacity(3) == 8
        pairs, coeffs, rhs = make_hyperplanes(30, 3, seed=0)
        dom = domain(2)
        expected = auto_capacity(coeffs.shape[0])
        assert LineQuadtree(coeffs, rhs, dom).capacity == expected
        assert CuttingTree(coeffs, rhs, dom).capacity == expected

    def test_unsplittable_duplicates_raise_when_asked(self):
        # 200 copies of one hyperplane (scaled): coincident duplicates that
        # no spatial split can separate.
        scales = np.linspace(1.0, 3.0, 200)
        coeffs = np.outer(scales, [1.0, 0.5])
        rhs = scales * -1.2
        dom = domain(2)
        # Default policy keeps the seed behaviour: oversized leaf, no error.
        tree = LineQuadtree(coeffs, rhs, dom, capacity=8)
        assert tree.max_leaf_load() == 200
        with pytest.raises(DegenerateHyperplaneError):
            LineQuadtree(coeffs, rhs, dom, capacity=8, on_unsplittable="raise")
        with pytest.raises(DegenerateHyperplaneError):
            CuttingTree(coeffs, rhs, dom, capacity=8, on_unsplittable="raise")

    def test_small_distinct_plane_not_swallowed_by_large_duplicates(self):
        # The coincidence tolerance is per row: one genuinely distinct
        # low-magnitude hyperplane stacked with huge-magnitude duplicates
        # must keep the cell from being (mis)classified as unsplittable.
        from repro.geometry.flattree import FlatTree
        from repro.perf.arena import GrowableArena

        tree = FlatTree.__new__(FlatTree)
        tree._coeff_arena = GrowableArena(
            np.array(
                [
                    [1e9, 2e9, 3e9],
                    [2e9, 4e9, 6e9],
                    [3e9, 6e9, 9e9],
                    [1.0, 2.0, 3.5],
                ]
            )
        )
        tree._rhs_arena = GrowableArena(np.array([4e9, 8e9, 12e9, 4.0]))
        tree._capacity = 2
        tree._max_depth = 12
        tree._raise_if_coincident(np.arange(4))  # must not raise
        tree._coeff_arena = GrowableArena(
            np.outer([1.0, 2.0, 3.0, 0.5], [1e9, 2e9, 3e9])
        )
        tree._rhs_arena = GrowableArena(np.array([4e9, 8e9, 12e9, 2e9]))
        with pytest.raises(DegenerateHyperplaneError):
            tree._raise_if_coincident(np.arange(4))

    def test_invalid_policy_rejected(self):
        pairs, coeffs, rhs = make_hyperplanes(6, 3, seed=0)
        with pytest.raises(ValueError):
            LineQuadtree(coeffs, rhs, domain(2), on_unsplittable="explode")

    def test_node_budget_still_bounds_flat_build(self):
        pairs, coeffs, rhs = make_hyperplanes(60, 3, seed=5)
        tree = LineQuadtree(coeffs, rhs, domain(2), capacity=1, max_nodes=64)
        assert tree.node_count() <= 64
        # Queries remain exact even with most cells stranded as leaves.
        box = Box(np.array([-4.0, -2.0]), np.array([-0.5, -0.1]))
        expected = set(
            np.flatnonzero(hyperplanes_intersect_box_mask(coeffs, rhs, box)).tolist()
        )
        assert set(tree.query(box).tolist()) == expected


class TestShrinkDomain:
    """The opt-in domain-shrinking root (PR 4 satellite)."""

    @pytest.mark.parametrize("dual_dims", [1, 2, 3])
    def test_exact_inside_fitted_root(self, dual_dims):
        rng = np.random.default_rng(dual_dims)
        pairs, coeffs, rhs = make_hyperplanes(40, dual_dims + 1, seed=dual_dims)
        dom = domain(dual_dims, max_ratio=128.0)
        fitted = LineQuadtree(coeffs, rhs, dom, capacity=4, shrink_domain=True)
        root = fitted.domain
        assert dom.contains_box(root)
        checked = 0
        for _ in range(40):
            lows = rng.uniform(root.lows, root.highs)
            highs = np.minimum(
                lows + rng.uniform(0.0, 1.0, size=dual_dims) * root.widths,
                root.highs,
            )
            box = Box(lows, highs)
            if not root.contains_box(box):
                continue
            checked += 1
            expected = np.flatnonzero(
                hyperplanes_intersect_box_mask(coeffs, rhs, box)
            )
            assert np.array_equal(np.sort(fitted.query(box)), expected)
            assert np.array_equal(
                np.sort(fitted.query_many([box])[0]), expected
            )
        assert checked > 0

    def test_intersection_index_stays_exact_everywhere(self):
        # Boxes escaping the fitted root must transparently fall back to
        # the scan path at the IntersectionIndex level.
        from repro.index.intersection import IntersectionIndex

        rng = np.random.default_rng(41)
        pairs, coeffs, rhs = make_hyperplanes(30, 4, seed=9)
        fitted = IntersectionIndex.from_arrays(
            *_dual_arrays_for(30, 4, seed=9),
            backend="quadtree",
            shrink_domain=True,
        )
        reference = IntersectionIndex.from_arrays(
            *_dual_arrays_for(30, 4, seed=9), backend="scan"
        )
        def canonical(candidate_set):
            rows = candidate_set.pairs
            order = np.lexsort((rows[:, 1], rows[:, 0]))
            return rows[order]

        for _ in range(15):
            lows = rng.uniform(-100.0, -0.2, size=3)
            highs = np.minimum(lows + rng.uniform(0.1, 80.0, size=3), 0.0)
            box = Box(lows, highs)
            want = canonical(reference.candidates(box))
            assert np.array_equal(canonical(fitted.candidates(box)), want)
            assert np.array_equal(
                canonical(fitted.candidates_many([box])[0]), want
            )

    def test_fitted_root_separates_the_anti_cluster(self):
        # The PR 3 known gap: anticorrelated data has near-constant
        # attribute sums, so every pairwise intersection hyperplane passes
        # close to (-1, ..., -1) — a tiny cluster inside [-128, 0]^k that
        # midpoint splits of the full domain never reach.  The fitted root
        # must shrink dramatically and restore real leaf-load reduction.
        rng = np.random.default_rng(2)
        points = rng.uniform(size=(60, 4))
        points[:, -1] = 2.0 - points[:, :-1].sum(axis=1)  # anticorrelated
        duals = dual_hyperplanes(points)
        pairs, coeffs, rhs = pairwise_intersection_arrays(duals)
        dom = domain(3, max_ratio=128.0)
        full = LineQuadtree(coeffs, rhs, dom, capacity=16)
        fitted = LineQuadtree(coeffs, rhs, dom, capacity=16, shrink_domain=True)
        assert fitted.domain.volume() < 0.01 * dom.volume()
        assert fitted.max_leaf_load() < full.max_leaf_load()


def _dual_arrays_for(n_points: int, dimensions: int, seed: int):
    rng = np.random.default_rng(seed)
    points = rng.random((n_points, dimensions)) + 0.05
    return np.ascontiguousarray(points[:, :-1]), np.ascontiguousarray(points[:, -1])


class TestFlatTreeInserts:
    """Per-leaf overflow buffers and threshold-triggered subtree rebuilds."""

    @pytest.mark.parametrize("flavor", ["quadtree", "cutting"])
    @pytest.mark.parametrize("dual_dims", [1, 2, 3])
    def test_inserted_hyperplanes_are_found(self, flavor, dual_dims):
        rng = np.random.default_rng(10 * dual_dims)
        pairs, coeffs, rhs = make_hyperplanes(25, dual_dims + 1, seed=1)
        dom = domain(dual_dims)
        cls = LineQuadtree if flavor == "quadtree" else CuttingTree
        tree = cls(coeffs, rhs, dom, capacity=4)
        _, new_coeffs, new_rhs = make_hyperplanes(20, dual_dims + 1, seed=2)
        tree.insert_hyperplanes(new_coeffs, new_rhs)
        all_coeffs = np.vstack([coeffs, new_coeffs])
        all_rhs = np.concatenate([rhs, new_rhs])
        for _ in range(8):
            lows = rng.uniform(-10.0, -0.2, size=dual_dims)
            highs = np.minimum(lows + rng.uniform(0.1, 8.0, size=dual_dims), 0.0)
            box = Box(lows, highs)
            expected = np.flatnonzero(
                hyperplanes_intersect_box_mask(all_coeffs, all_rhs, box)
            )
            assert np.array_equal(np.sort(tree.query(box)), expected)
            assert np.array_equal(np.sort(tree.query_many([box])[0]), expected)

    def test_threshold_triggers_subtree_rebuild(self):
        pairs, coeffs, rhs = make_hyperplanes(20, 3, seed=4)
        tree = LineQuadtree(coeffs, rhs, domain(2), capacity=4)
        nodes_before = tree.node_count()
        _, more_coeffs, more_rhs = make_hyperplanes(40, 3, seed=5)
        tree.insert_hyperplanes(more_coeffs, more_rhs)
        # Enough mass crossed existing leaves to push several past the
        # rebuild threshold: the CSR store must have grown in place.
        assert tree.node_count() > nodes_before
        assert tree.size == coeffs.shape[0] + more_coeffs.shape[0]

    def test_rebuild_budget_is_global_not_per_subtree(self):
        pairs, coeffs, rhs = make_hyperplanes(20, 4, seed=6)
        tree = LineQuadtree(coeffs, rhs, domain(3), capacity=2, max_nodes=256)
        for seed in range(7, 11):
            _, more_coeffs, more_rhs = make_hyperplanes(25, 4, seed=seed)
            tree.insert_hyperplanes(more_coeffs, more_rhs)
        # Repeated insert-triggered rebuilds must never grow the store past
        # the size-scaled global budget (a per-rebuild budget would).
        assert tree.node_count() <= tree.core._node_budget()

    def test_pure_coincident_overflow_raises_on_rebuild(self):
        # Insert a stack of coincident duplicates into a region no other
        # hyperplane crosses: the threshold-triggered subtree rebuild sees a
        # pure-duplicate cell and must surface DegenerateHyperplaneError in
        # on_unsplittable="raise" mode (the update-path analogue of the
        # static build's degeneracy check).
        from repro.geometry.flattree import FlatTree, MidpointSplitRule

        dom = Box(np.array([-10.0, -10.0]), np.array([0.0, 0.0]))
        base_rhs = np.linspace(-9.5, -6.0, 12)
        base_coeffs = np.tile([1.0, 0.0], (12, 1))
        tree = FlatTree(
            base_coeffs,
            base_rhs,
            dom,
            MidpointSplitRule(2),
            capacity=2,
            on_unsplittable="raise",
        )
        dup_coeffs = np.tile([1.0, 0.0], (30, 1))
        dup_rhs = np.full(30, -1.0)
        with pytest.raises(DegenerateHyperplaneError):
            tree.insert_hyperplanes(dup_coeffs, dup_rhs)
        # The tree stays consistent: the duplicates are still answered from
        # the overflow buffers.
        box = Box(np.array([-1.5, -5.0]), np.array([-0.5, -0.1]))
        assert np.count_nonzero(tree.query(box) >= 12) == 30

    def test_cutting_honours_shrink_domain(self):
        # A session-level shrink_domain applies to whichever backend the
        # planner picks, so the cutting wrapper must honour the flag too.
        rng = np.random.default_rng(77)
        pairs, coeffs, rhs = make_hyperplanes(40, 4, seed=7)
        dom = domain(3, max_ratio=128.0)
        fitted = CuttingTree(coeffs, rhs, dom, capacity=8, shrink_domain=True)
        assert dom.contains_box(fitted.domain)
        root = fitted.domain
        for _ in range(10):
            lows = rng.uniform(root.lows, root.highs)
            highs = np.minimum(lows + rng.uniform(0.0, 1.0, size=3) * root.widths, root.highs)
            box = Box(lows, highs)
            if not root.contains_box(box):
                continue
            expected = np.flatnonzero(hyperplanes_intersect_box_mask(coeffs, rhs, box))
            assert np.array_equal(np.sort(fitted.query(box)), expected)
