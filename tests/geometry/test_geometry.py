"""Tests for the geometry substrate: boxes, duality, intersections, arrangement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, InvalidDatasetError
from repro.geometry.arrangement2d import Arrangement2D
from repro.geometry.boxes import Box
from repro.geometry.dual import DualHyperplane, dual_hyperplane, dual_hyperplanes
from repro.geometry.hyperplane import (
    IntersectionHyperplane,
    hyperplanes_intersect_box_mask,
    intersection_of,
    pairwise_intersection_arrays,
    pairwise_intersections,
)


class TestBox:
    def test_basic_properties(self):
        box = Box(np.array([-2.0, -3.0]), np.array([-1.0, 0.0]))
        assert box.dimensions == 2
        np.testing.assert_allclose(box.center, [-1.5, -1.5])
        np.testing.assert_allclose(box.widths, [1.0, 3.0])
        assert box.volume() == pytest.approx(3.0)

    def test_from_intervals(self):
        box = Box.from_intervals([(-2, -1), (-3, 0)])
        np.testing.assert_allclose(box.lows, [-2, -3])

    def test_contains_and_intersects(self):
        outer = Box(np.array([0.0, 0.0]), np.array([4.0, 4.0]))
        inner = Box(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        disjoint = Box(np.array([5.0, 5.0]), np.array([6.0, 6.0]))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.intersects_box(inner)
        assert not outer.intersects_box(disjoint)
        assert outer.contains_point([2.0, 2.0])
        assert not outer.contains_point([5.0, 2.0])

    def test_clip(self):
        a = Box(np.array([0.0]), np.array([4.0]))
        b = Box(np.array([2.0]), np.array([6.0]))
        clipped = a.clip(b)
        assert clipped.lows[0] == 2.0 and clipped.highs[0] == 4.0

    def test_linear_range_is_exact(self):
        box = Box(np.array([-2.0, 1.0]), np.array([3.0, 5.0]))
        coeffs = np.array([2.0, -1.0])
        lo, hi = box.linear_range(coeffs, offset=1.0)
        corners = box.corners() @ coeffs + 1.0
        assert lo == pytest.approx(corners.min())
        assert hi == pytest.approx(corners.max())

    def test_corners_count(self):
        box = Box(np.zeros(3), np.ones(3))
        assert box.corners().shape == (8, 3)

    def test_split(self):
        box = Box(np.zeros(2), np.ones(2))
        children = box.split()
        assert len(children) == 4
        assert sum(child.volume() for child in children) == pytest.approx(1.0)

    def test_split_at(self):
        box = Box(np.zeros(2), np.ones(2))
        left, right = box.split_at(0, 0.25)
        assert left.highs[0] == 0.25 and right.lows[0] == 0.25

    def test_validation(self):
        with pytest.raises(InvalidDatasetError):
            Box(np.array([1.0]), np.array([0.0]))
        with pytest.raises(InvalidDatasetError):
            Box(np.array([]), np.array([]))
        with pytest.raises(DimensionMismatchError):
            Box(np.zeros(2), np.ones(2)).intersects_box(Box(np.zeros(3), np.ones(3)))


class TestDuality:
    def test_dual_of_paper_point(self):
        # p1(1, 6) -> y = x - 6.
        dual = dual_hyperplane([1.0, 6.0])
        assert dual.evaluate([0.0]) == pytest.approx(-6.0)
        assert dual.evaluate([2.0]) == pytest.approx(-4.0)

    def test_score_identity(self):
        # f(-r) = -S(p).
        dual = dual_hyperplane([2.0, 3.0, 5.0])
        ratios = [0.7, 1.3]
        assert dual.score_at_ratio(ratios) == pytest.approx(0.7 * 2 + 1.3 * 3 + 5)

    def test_round_trip(self):
        point = np.array([2.0, 3.0, 5.0])
        np.testing.assert_allclose(dual_hyperplane(point).to_point(), point)

    def test_indices_preserved(self, hotels):
        duals = dual_hyperplanes(hotels)
        assert [d.index for d in duals] == [0, 1, 2, 3]

    def test_value_range_matches_corner_evaluation(self):
        dual = dual_hyperplane([2.0, 3.0, 5.0])
        box = Box(np.array([-2.0, -1.0]), np.array([-0.5, -0.25]))
        lo, hi = dual.value_range(box)
        values = [dual.evaluate(c) for c in box.corners()]
        assert lo == pytest.approx(min(values))
        assert hi == pytest.approx(max(values))

    def test_needs_two_dimensions(self):
        with pytest.raises(InvalidDatasetError):
            dual_hyperplane([1.0])


class TestIntersections:
    def test_paper_intersections(self, hotels):
        duals = dual_hyperplanes(hotels[[0, 1, 2]])
        pairs = {tuple(sorted(p.pair)): p for p in pairwise_intersections(duals)}
        assert pairs[(0, 1)].x_coordinate() == pytest.approx(-2 / 3)
        assert pairs[(0, 2)].x_coordinate() == pytest.approx(-1.0)
        assert pairs[(1, 2)].x_coordinate() == pytest.approx(-1.5)

    def test_degenerate_pairs_skipped(self):
        duals = dual_hyperplanes([[1.0, 2.0], [1.0, 5.0], [2.0, 1.0]])
        pairs = pairwise_intersections(duals)
        assert {tuple(sorted(p.pair)) for p in pairs} == {(0, 2), (1, 2)}

    def test_array_and_object_paths_agree(self):
        rng = np.random.default_rng(0)
        duals = dual_hyperplanes(rng.random((12, 3)))
        objects = pairwise_intersections(duals)
        pairs, coeffs, rhs = pairwise_intersection_arrays(duals)
        assert len(objects) == pairs.shape[0]
        lookup = {tuple(p.pair): p for p in objects}
        for i in range(pairs.shape[0]):
            obj = lookup[tuple(pairs[i])]
            np.testing.assert_allclose(obj.coefficients, coeffs[i])
            assert obj.rhs == pytest.approx(rhs[i])

    def test_intersects_box(self):
        inter = IntersectionHyperplane(
            coefficients=np.array([1.0]), rhs=-1.0, first=0, second=1
        )
        assert inter.intersects_box(Box(np.array([-2.0]), np.array([0.0])))
        assert not inter.intersects_box(Box(np.array([-0.5]), np.array([0.0])))

    def test_vectorised_mask_matches_object_test(self):
        rng = np.random.default_rng(1)
        duals = dual_hyperplanes(rng.random((10, 4)))
        objects = pairwise_intersections(duals)
        pairs, coeffs, rhs = pairwise_intersection_arrays(duals)
        box = Box(-2.0 * np.ones(3), -0.1 * np.ones(3))
        mask = hyperplanes_intersect_box_mask(coeffs, rhs, box)
        lookup = {tuple(p.pair): p.intersects_box(box) for p in objects}
        for i in range(pairs.shape[0]):
            assert mask[i] == lookup[tuple(pairs[i])]

    def test_x_coordinate_requires_2d(self):
        inter = IntersectionHyperplane(
            coefficients=np.array([1.0, 1.0]), rhs=0.0, first=0, second=1
        )
        with pytest.raises(DimensionMismatchError):
            inter.x_coordinate()

    def test_intersection_of_dimension_mismatch(self):
        a = DualHyperplane(np.array([1.0]), 1.0, 0)
        b = DualHyperplane(np.array([1.0, 2.0]), 1.0, 1)
        with pytest.raises(DimensionMismatchError):
            intersection_of(a, b)


class TestArrangement2D:
    def build(self, hotels):
        return Arrangement2D(dual_hyperplanes(hotels[[0, 1, 2]]))

    def test_paper_intervals(self, hotels):
        arrangement = self.build(hotels)
        assert arrangement.num_intervals == 4
        np.testing.assert_allclose(arrangement.boundaries, [-1.5, -1.0, -2 / 3])

    def test_paper_order_vectors(self, hotels):
        arrangement = self.build(hotels)
        # Figure 7: the four order vectors from left to right.
        expected = [[0, 1, 2], [0, 2, 1], [1, 2, 0], [2, 1, 0]]
        actual = [iv.order_vector.tolist() for iv in arrangement.intervals]
        assert actual == expected

    def test_ranking_of_last_interval(self, hotels):
        arrangement = self.build(hotels)
        assert arrangement.intervals[-1].ranking == [2, 1, 0]

    def test_interval_containing_boundaries(self, hotels):
        arrangement = self.build(hotels)
        assert arrangement.interval_containing(-1.5).order_vector.tolist() == [0, 1, 2]
        assert arrangement.interval_containing(-1.2).order_vector.tolist() == [0, 2, 1]
        assert arrangement.interval_containing(-0.25).order_vector.tolist() == [2, 1, 0]

    def test_intersections_in_range(self, hotels):
        arrangement = self.build(hotels)
        assert len(arrangement.intersections_in_range(-2.0, -0.25)) == 3
        assert len(arrangement.intersections_in_range(-0.5, -0.25)) == 0
        assert len(arrangement.intersections_in_range(-1.0, -1.0)) == 1

    def test_lazy_mode_matches_dense_mode(self):
        rng = np.random.default_rng(2)
        duals = dual_hyperplanes(rng.random((20, 2)) + 0.1)
        dense = Arrangement2D(duals, dense_threshold=1000)
        lazy = Arrangement2D(duals, dense_threshold=1)
        assert dense.is_dense and not lazy.is_dense
        for x in (-3.0, -1.0, -0.4, -0.05):
            assert dense.order_vector_at(x).tolist() == lazy.order_vector_at(x).tolist()

    def test_rejects_higher_dimensional_duals(self):
        with pytest.raises(DimensionMismatchError):
            Arrangement2D(dual_hyperplanes(np.random.default_rng(0).random((4, 3))))

    def test_empty_arrangement(self):
        arrangement = Arrangement2D([])
        with pytest.raises(InvalidDatasetError):
            arrangement.interval_containing(-1.0)
