"""Tests for the line quadtree and the cutting tree (Intersection Index backends)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DimensionMismatchError
from repro.geometry.boxes import Box
from repro.geometry.cutting import CuttingTree
from repro.geometry.dual import dual_hyperplanes
from repro.geometry.hyperplane import (
    hyperplanes_intersect_box_mask,
    pairwise_intersection_arrays,
)
from repro.geometry.quadtree import LineQuadtree


def make_hyperplanes(n_points: int, dimensions: int, seed: int = 0):
    """Pairwise intersection hyperplanes of random dual hyperplanes."""
    rng = np.random.default_rng(seed)
    duals = dual_hyperplanes(rng.random((n_points, dimensions)) + 0.05)
    return pairwise_intersection_arrays(duals)


def domain(dual_dims: int, max_ratio: float = 10.0) -> Box:
    return Box(np.full(dual_dims, -max_ratio), np.zeros(dual_dims))


def brute_force_query(coeffs, rhs, box):
    return set(np.flatnonzero(hyperplanes_intersect_box_mask(coeffs, rhs, box)).tolist())


class TestQuadtree:
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_query_is_exact(self, dimensions):
        pairs, coeffs, rhs = make_hyperplanes(30, dimensions, seed=1)
        dom = domain(dimensions - 1)
        tree = LineQuadtree(coeffs, rhs, dom, capacity=16)
        for lo, hi in ((-3.0, -0.2), (-1.0, -0.9), (-9.0, -0.01)):
            box = Box(np.full(dimensions - 1, lo), np.full(dimensions - 1, hi))
            expected = brute_force_query(coeffs, rhs, box)
            assert set(tree.query(box).tolist()) == expected

    def test_query_outside_domain_is_still_exact(self):
        pairs, coeffs, rhs = make_hyperplanes(20, 2, seed=2)
        tree = LineQuadtree(coeffs, rhs, domain(1, max_ratio=2.0), capacity=4)
        box = Box(np.array([-50.0]), np.array([0.0]))
        assert set(tree.query(box).tolist()) == brute_force_query(coeffs, rhs, box)

    def test_splitting_reduces_leaf_load(self):
        pairs, coeffs, rhs = make_hyperplanes(40, 2, seed=3)
        tree = LineQuadtree(coeffs, rhs, domain(1), capacity=8)
        assert tree.node_count() > 1
        assert tree.max_leaf_load() < coeffs.shape[0]

    def test_capacity_validation(self):
        pairs, coeffs, rhs = make_hyperplanes(5, 2, seed=0)
        with pytest.raises(ValueError):
            LineQuadtree(coeffs, rhs, domain(1), capacity=0)

    def test_dimension_mismatch(self):
        pairs, coeffs, rhs = make_hyperplanes(5, 3, seed=0)
        with pytest.raises(DimensionMismatchError):
            LineQuadtree(coeffs, rhs, domain(1))
        tree = LineQuadtree(coeffs, rhs, domain(2))
        with pytest.raises(DimensionMismatchError):
            tree.query(Box(np.array([-1.0]), np.array([0.0])))

    def test_empty_tree(self):
        tree = LineQuadtree(np.empty((0, 1)), np.empty(0), domain(1))
        assert tree.query(Box(np.array([-1.0]), np.array([0.0]))).size == 0

    def test_node_budget_bounds_tree_size(self):
        pairs, coeffs, rhs = make_hyperplanes(60, 3, seed=5)
        tree = LineQuadtree(coeffs, rhs, domain(2), capacity=1, max_nodes=64)
        # The budget is soft: in-flight recursion levels may each add one more
        # (leaf-only) sibling set after the budget is exhausted.
        assert tree.node_count() <= 64 + 4 * tree.depth


class TestCuttingTree:
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_query_is_exact(self, dimensions):
        pairs, coeffs, rhs = make_hyperplanes(30, dimensions, seed=7)
        dom = domain(dimensions - 1)
        tree = CuttingTree(coeffs, rhs, dom, capacity=16, seed=0)
        for lo, hi in ((-3.0, -0.2), (-1.0, -0.9), (-9.0, -0.01)):
            box = Box(np.full(dimensions - 1, lo), np.full(dimensions - 1, hi))
            expected = brute_force_query(coeffs, rhs, box)
            assert set(tree.query(box).tolist()) == expected

    def test_deterministic_given_seed(self):
        pairs, coeffs, rhs = make_hyperplanes(25, 3, seed=9)
        a = CuttingTree(coeffs, rhs, domain(2), seed=3)
        b = CuttingTree(coeffs, rhs, domain(2), seed=3)
        assert a.node_count() == b.node_count()
        assert a.depth == b.depth

    def test_cells_reduce_load(self):
        pairs, coeffs, rhs = make_hyperplanes(40, 2, seed=11)
        tree = CuttingTree(coeffs, rhs, domain(1), capacity=8, seed=0)
        assert tree.max_cell_load() < coeffs.shape[0]

    def test_balanced_on_clustered_input(self):
        """The worst-case scenario of Figures 13/14: clustered intersections.

        The cutting tree's data-driven splits keep it shallower than the
        midpoint quadtree on inputs whose intersections cluster tightly.
        """
        from repro.data.worst_case import generate_worst_case

        data = generate_worst_case(48, 2, seed=0)
        duals = dual_hyperplanes(data)
        pairs, coeffs, rhs = pairwise_intersection_arrays(duals)
        dom = domain(1, max_ratio=128.0)
        quad = LineQuadtree(coeffs, rhs, dom, capacity=8)
        cut = CuttingTree(coeffs, rhs, dom, capacity=8, seed=0)
        assert cut.depth <= quad.depth

    def test_empty_tree(self):
        tree = CuttingTree(np.empty((0, 2)), np.empty(0), domain(2))
        assert tree.query(Box(-np.ones(2), np.zeros(2))).size == 0


@given(
    seed=st.integers(min_value=0, max_value=50),
    lo=st.floats(min_value=-8.0, max_value=-0.5),
    width=st.floats(min_value=0.0, max_value=5.0),
)
@settings(max_examples=30, deadline=None)
def test_trees_agree_with_brute_force(seed, lo, width):
    """Property: both trees return exactly the brute-force candidate set."""
    pairs, coeffs, rhs = make_hyperplanes(15, 3, seed=seed)
    dom = domain(2)
    hi = min(lo + width, 0.0)
    box = Box(np.full(2, lo), np.full(2, hi))
    expected = brute_force_query(coeffs, rhs, box)
    quad = LineQuadtree(coeffs, rhs, dom, capacity=4)
    cut = CuttingTree(coeffs, rhs, dom, capacity=4, seed=1)
    assert set(quad.query(box).tolist()) == expected
    assert set(cut.query(box).tolist()) == expected
