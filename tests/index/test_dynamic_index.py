"""Dynamic EclipseIndex maintenance: insert/delete parity and mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import RatioVector
from repro.errors import DegenerateHyperplaneError, InvalidDatasetError
from repro.index.eclipse_index import EclipseIndex
from repro.skyline import incremental as inc
from repro.skyline.api import skyline_indices


def apply_index_updates(index, data, sky, inserts, deletes, rng):
    """Drive one update batch through the incremental kernels + the index."""
    deletes = inc.validate_deletes(data.shape[0], deletes)
    new_data, delta = inc.apply_updates(data, sky, inserts, deletes)
    remap = inc.remap_after_delete(data.shape[0], deletes)
    index.delete_points(remap, delta.removed_old)
    index.insert_points(new_data, delta.added)
    return new_data, np.flatnonzero(delta.is_skyline)


class TestDynamicParityFuzz:
    @pytest.mark.parametrize("backend", ["quadtree", "cutting"])
    @pytest.mark.parametrize("dims", [2, 3, 4])
    def test_byte_identical_to_fresh_build(self, backend, dims):
        rng = np.random.default_rng(100 * dims)
        for trial in range(6):
            n = int(rng.integers(12, 60))
            data = rng.uniform(0, 10, size=(n, dims))
            index = EclipseIndex(backend=backend, capacity=4).build(data)
            sky = skyline_indices(data)
            for step in range(3):
                num_deletes = int(rng.integers(0, max(1, data.shape[0] // 4)))
                deletes = (
                    rng.choice(data.shape[0], size=num_deletes, replace=False)
                    if num_deletes
                    else None
                )
                num_inserts = int(rng.integers(0, 10))
                inserts = (
                    rng.uniform(0, 10, size=(num_inserts, dims))
                    if num_inserts
                    else None
                )
                data, sky = apply_index_updates(
                    index, data, sky, inserts, deletes, rng
                )
                fresh = EclipseIndex(backend=backend, capacity=4).build(data)
                assert np.array_equal(
                    np.sort(index.skyline_indices), np.sort(fresh.skyline_indices)
                )
                assert index.num_skyline_points == fresh.num_skyline_points
                specs = [
                    RatioVector.uniform(0.3, 2.5, dims),
                    RatioVector.uniform(0.8, 1.2, dims),
                    RatioVector.uniform(0.1, 6.0, dims),
                ]
                for spec in specs:
                    assert np.array_equal(
                        index.query_indices(spec), fresh.query_indices(spec)
                    )
                # Batched probes on the dynamic index match singles too.
                for spec, batched in zip(specs, index.query_indices_many(specs)):
                    assert np.array_equal(batched, index.query_indices(spec))

    def test_integer_data_with_ties_and_duplicates(self):
        rng = np.random.default_rng(17)
        dims = 3
        data = rng.integers(0, 7, size=(40, dims)).astype(float)
        index = EclipseIndex(backend="cutting", capacity=4).build(data)
        sky = skyline_indices(data)
        for step in range(3):
            inserts = rng.integers(0, 7, size=(6, dims)).astype(float)
            deletes = rng.choice(data.shape[0], size=4, replace=False)
            data, sky = apply_index_updates(index, data, sky, inserts, deletes, rng)
            fresh = EclipseIndex(backend="cutting", capacity=4).build(data)
            for spec in (RatioVector.uniform(0.4, 2.0, dims),
                         RatioVector.uniform(0.9, 1.1, dims)):
                assert np.array_equal(
                    index.query_indices(spec), fresh.query_indices(spec)
                )


class TestDynamicMechanics:
    def test_failed_delete_leaves_index_untouched(self):
        # Regression: delete_points must validate on scratch state before
        # mutating — a rejected call (deleted row still indexed) used to
        # leave half-remapped positions that silently answered queries
        # with wrong row ids.
        rng = np.random.default_rng(3)
        data = rng.uniform(0, 10, size=(30, 3))
        index = EclipseIndex(backend="cutting").build(data)
        victim = int(index.skyline_indices[0])
        remap = inc.remap_after_delete(30, np.array([victim]))
        with pytest.raises(InvalidDatasetError):
            index.delete_points(remap, np.empty(0, dtype=np.intp))
        # Everything still consistent with the original dataset.
        fresh = EclipseIndex(backend="cutting").build(data)
        assert np.array_equal(index.skyline_indices, fresh.skyline_indices)
        spec = RatioVector.uniform(0.4, 2.0, 3)
        assert np.array_equal(index.query_indices(spec), fresh.query_indices(spec))

    def test_delete_rejects_unknown_position(self):
        data = np.random.default_rng(0).uniform(0, 1, size=(20, 3))
        index = EclipseIndex(backend="cutting").build(data)
        buffered = np.setdiff1d(np.arange(20), index.skyline_indices)
        if buffered.size:
            with pytest.raises(InvalidDatasetError):
                index.delete_points(np.arange(20), buffered[:1])

    def test_dead_slots_counted_and_excluded(self):
        rng = np.random.default_rng(5)
        data = rng.uniform(0, 10, size=(30, 3))
        index = EclipseIndex(backend="cutting").build(data)
        sky = skyline_indices(data)
        victim = int(sky[0])
        data2, _ = apply_index_updates(
            index, data, sky, None, np.array([victim]), rng
        )
        assert index.num_dead_slots >= 1
        fresh = EclipseIndex(backend="cutting").build(data2)
        assert index.num_skyline_points == fresh.num_skyline_points
        spec = RatioVector.uniform(0.3, 2.0, 3)
        assert np.array_equal(index.query_indices(spec), fresh.query_indices(spec))

    def test_tree_overflow_and_subtree_rebuild_triggered(self):
        rng = np.random.default_rng(9)
        data = rng.uniform(0, 10, size=(40, 3))
        index = EclipseIndex(backend="cutting", capacity=4).build(data)
        sky = skyline_indices(data)
        core = index.intersection_index.tree.core
        nodes_before = core.node_count()
        # Insert enough fresh skyline-grade points to overflow some leaves.
        inserts = rng.uniform(0, 0.5, size=(12, 3))  # strong points: all join
        pairs_before = index.intersection_index.num_pairs
        apply_index_updates(index, data, sky, inserts, None, rng)
        core = index.intersection_index.tree.core
        assert index.intersection_index.num_pairs > pairs_before
        # Either overflow buffers are populated or a threshold-triggered
        # subtree rebuild grew the CSR node store — typically both.
        assert core.overflow_size() > 0 or core.node_count() > nodes_before

    def test_degenerate_arrivals_absorbed_where_rebuild_refuses(self):
        # Collinear arrivals make every new-pair intersection hyperplane a
        # coincident duplicate.  A *fresh* build refuses such inputs with
        # DegenerateHyperplaneError; the dynamic index absorbs them into
        # overflow buffers (mixed cells are never split toward purity, so
        # queries stay exact through the post-filter) — graceful
        # degradation until the session's dead-fraction/cost arm schedules
        # the rebuild that surfaces the degeneracy.
        rng = np.random.default_rng(11)
        data = rng.uniform(4.0, 10.0, size=(30, 3))
        index = EclipseIndex(backend="cutting", capacity=4).build(data)
        sky = skyline_indices(data)
        t = np.arange(40, dtype=float) * 0.01
        arrivals = np.array([1.0, 3.0, 2.0]) + t[:, None] * np.array(
            [1.0, -1.0, 0.5]
        )
        new_data, sky = apply_index_updates(index, data, sky, arrivals, None, rng)
        with pytest.raises(DegenerateHyperplaneError):
            EclipseIndex(backend="cutting", capacity=4).build(new_data)
        from repro.core.transform import eclipse_transform_indices

        for spec in (RatioVector.uniform(0.4, 2.2, 3),
                     RatioVector.uniform(0.7, 1.6, 3)):
            assert np.array_equal(
                index.query_indices(spec),
                eclipse_transform_indices(new_data, spec),
            )

    def test_sorted_backend_merge_2d(self):
        rng = np.random.default_rng(13)
        data = rng.uniform(0, 10, size=(50, 2))
        index = EclipseIndex(backend="quadtree").build(data)
        assert index.intersection_index.backend == "sorted"
        sky = skyline_indices(data)
        for _ in range(3):
            inserts = rng.uniform(0, 10, size=(8, 2))
            deletes = rng.choice(data.shape[0], size=3, replace=False)
            data, sky = apply_index_updates(index, data, sky, inserts, deletes, rng)
            fresh = EclipseIndex(backend="quadtree").build(data)
            spec = RatioVector.uniform(0.25, 3.0, 2)
            assert np.array_equal(
                index.query_indices(spec), fresh.query_indices(spec)
            )

    def test_delete_everything_gives_empty_results(self):
        data = np.array([[1.0, 5.0, 2.0], [4.0, 2.0, 3.0], [2.0, 3.0, 6.0]])
        index = EclipseIndex(backend="cutting").build(data)
        sky = skyline_indices(data)
        deletes = np.arange(3)
        new_data, delta = inc.apply_updates(data, sky, None, deletes)
        index.delete_points(inc.remap_after_delete(3, deletes), delta.removed_old)
        index.insert_points(new_data, delta.added)
        assert index.query_indices(RatioVector.uniform(0.5, 2.0, 3)).size == 0


class TestBatchedAdjustments:
    """The batched correction pass must match the per-query reference."""

    @pytest.mark.parametrize("backend", ["quadtree", "cutting"])
    @pytest.mark.parametrize("dims", [2, 3, 4])
    def test_batch_vs_single_parity(self, backend, dims):
        rng = np.random.default_rng(dims + 31)
        data = rng.uniform(0, 10, size=(80, dims))
        index = EclipseIndex(backend=backend).build(data)
        specs = []
        for _ in range(17):
            low = float(rng.uniform(0.05, 1.0))
            specs.append(RatioVector.uniform(low, low + float(rng.uniform(0.1, 4.0)), dims))
        batched = index.query_indices_many(specs)
        for spec, got in zip(specs, batched):
            assert np.array_equal(got, index.query_indices(spec))

    def test_batch_parity_with_reference_corner_ties(self):
        # Duplicate points produce exact dual ties at every reference
        # corner; the tie add-back of the correction pass must agree
        # between the batched and the per-query paths.
        base = np.array(
            [[1.0, 6.0], [1.0, 6.0], [4.0, 4.0], [6.0, 1.0], [8.0, 5.0]]
        )
        index = EclipseIndex(backend="quadtree").build(base)
        specs = [
            RatioVector.uniform(0.25, 2.0, 2),
            RatioVector.uniform(0.5, 0.5, 2),
            RatioVector.uniform(1.0, 3.0, 2),
        ]
        batched = index.query_indices_many(specs)
        for spec, got in zip(specs, batched):
            assert np.array_equal(got, index.query_indices(spec))


class TestShrinkDomainIndex:
    """The opt-in domain-shrinking root through the full index stack."""

    def test_shrunk_index_matches_default_queries(self):
        rng = np.random.default_rng(55)
        data = rng.uniform(0, 10, size=(120, 4))
        fitted = EclipseIndex(backend="quadtree", shrink_domain=True).build(data)
        default = EclipseIndex(backend="quadtree").build(data)
        for _ in range(10):
            low = float(rng.uniform(0.05, 1.0))
            spec = RatioVector.uniform(low, low + float(rng.uniform(0.1, 5.0)), 4)
            assert np.array_equal(
                fitted.query_indices(spec), default.query_indices(spec)
            )
        specs = [RatioVector.uniform(0.3, 2.5, 4), RatioVector.uniform(0.05, 7.0, 4)]
        for got, want in zip(
            fitted.query_indices_many(specs), default.query_indices_many(specs)
        ):
            assert np.array_equal(got, want)

    def test_shrunk_index_stays_exact_under_updates(self):
        rng = np.random.default_rng(56)
        data = rng.uniform(0, 10, size=(50, 3))
        index = EclipseIndex(backend="quadtree", shrink_domain=True, capacity=4).build(data)
        sky = skyline_indices(data)
        for _ in range(3):
            inserts = rng.uniform(0, 10, size=(8, 3))
            deletes = rng.choice(data.shape[0], size=4, replace=False)
            data, sky = apply_index_updates(index, data, sky, inserts, deletes, rng)
            fresh = EclipseIndex(backend="quadtree", capacity=4).build(data)
            for spec in (RatioVector.uniform(0.4, 2.0, 3),
                         RatioVector.uniform(0.1, 6.0, 3)):
                assert np.array_equal(
                    index.query_indices(spec), fresh.query_indices(spec)
                )
