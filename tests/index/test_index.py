"""Tests for the Order Vector Index, Intersection Index, and EclipseIndex."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import eclipse_baseline_indices
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.data.worst_case import generate_worst_case
from repro.errors import (
    AlgorithmNotSupportedError,
    DimensionMismatchError,
    IndexNotBuiltError,
)
from repro.geometry.boxes import Box
from repro.geometry.dual import dual_hyperplanes
from repro.index.eclipse_index import EclipseIndex, eclipse_index_query
from repro.index.intersection import IntersectionIndex
from repro.index.order_vector import OrderVectorIndex


class TestOrderVectorIndex:
    def test_paper_initial_state(self, hotels, paper_ratio):
        duals = dual_hyperplanes(hotels[[0, 1, 2]])
        index = OrderVectorIndex(duals)
        box = Box(lows=-paper_ratio.highs, highs=-paper_ratio.lows)
        state = index.initial_state(box)
        # At x = -1/4 the order (closest first) is p3, p2, p1 -> counts 2,1,0.
        assert state.counts.tolist() == [2, 1, 0]
        assert state.initially_above(2, 0)
        assert not state.initially_above(0, 2)

    def test_high_dimensional_counts_are_score_ranks(self):
        data = generate_dataset("inde", 30, 3, seed=1)
        duals = dual_hyperplanes(data)
        index = OrderVectorIndex(duals)
        ratios = RatioVector.uniform(0.5, 2.0, 3)
        box = Box(lows=-ratios.highs, highs=-ratios.lows)
        state = index.initial_state(box)
        scores = data @ np.array([0.5, 0.5, 1.0])  # the all-lows corner
        expected = np.array([(scores < s).sum() for s in scores])
        assert state.counts.tolist() == expected.tolist()

    def test_arrangement_only_built_for_2d(self):
        duals_2d = dual_hyperplanes(generate_dataset("inde", 10, 2, seed=0))
        duals_3d = dual_hyperplanes(generate_dataset("inde", 10, 3, seed=0))
        assert OrderVectorIndex(duals_2d).arrangement is not None
        assert OrderVectorIndex(duals_3d).arrangement is None

    def test_arrangement_skipped_above_limit(self):
        duals = dual_hyperplanes(generate_dataset("inde", 10, 2, seed=0))
        index = OrderVectorIndex(duals, max_arrangement_lines=5)
        assert index.arrangement is None

    def test_empty_index(self):
        index = OrderVectorIndex([])
        state = index.initial_state(Box(np.array([-1.0]), np.array([-0.5])))
        assert state.counts.size == 0

    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_initial_states_match_per_box(self, dimensions):
        # The batched path (one stacked GEMM + one arrangement lookup) must
        # reproduce initial_state per box, bit for bit.
        duals = dual_hyperplanes(generate_dataset("anti", 40, dimensions, seed=2))
        index = OrderVectorIndex(duals)
        rng = np.random.default_rng(4)
        k = dimensions - 1
        boxes = []
        for _ in range(9):
            lo = -rng.uniform(0.5, 6.0, size=k)
            hi = np.minimum(lo + rng.uniform(0.0, 4.0, size=k), 0.0)
            boxes.append(Box(lo, hi))
        states = index.initial_states(boxes)
        assert len(states) == len(boxes)
        for box, state in zip(boxes, states):
            single = index.initial_state(box)
            np.testing.assert_array_equal(state.counts, single.counts)
            # The stacked GEMM may round final digits differently from the
            # per-query matrix-vector product (documented boundary).
            np.testing.assert_allclose(state.values, single.values, rtol=1e-12)
            np.testing.assert_array_equal(state.reference, single.reference)
            if single.slopes is None:
                assert state.slopes is None
            else:
                np.testing.assert_array_equal(state.slopes, single.slopes)

    def test_initial_states_empty_batch(self):
        duals = dual_hyperplanes(generate_dataset("inde", 10, 3, seed=0))
        assert OrderVectorIndex(duals).initial_states([]) == []

    def test_mixed_dimensionality_rejected(self):
        duals = dual_hyperplanes([[1.0, 2.0]]) + dual_hyperplanes([[1.0, 2.0, 3.0]])
        with pytest.raises(DimensionMismatchError):
            OrderVectorIndex(duals)


class TestIntersectionIndex:
    def make(self, dimensions, backend, n=25, seed=3, **kwargs):
        data = generate_dataset("anti", n, dimensions, seed=seed)
        duals = dual_hyperplanes(data)
        return IntersectionIndex(duals, backend=backend, **kwargs), duals

    @pytest.mark.parametrize("backend", ["quadtree", "cutting", "scan"])
    @pytest.mark.parametrize("dimensions", [3, 4])
    def test_candidates_match_scan(self, backend, dimensions):
        index, duals = self.make(dimensions, backend)
        reference, _ = self.make(dimensions, "scan")
        box = Box(np.full(dimensions - 1, -2.75), np.full(dimensions - 1, -0.36))
        got = {tuple(p) for p in index.candidates(box).pairs}
        expected = {tuple(p) for p in reference.candidates(box).pairs}
        assert got == expected

    def test_sorted_backend_for_2d(self):
        index, _ = self.make(2, "auto")
        assert index.backend == "sorted"
        box = Box(np.array([-2.0]), np.array([-0.25]))
        scan, _ = self.make(2, "scan")
        got = {tuple(p) for p in index.candidates(box).pairs}
        expected = {tuple(p) for p in scan.candidates(box).pairs}
        assert got == expected

    def test_sorted_backend_rejected_for_high_d(self):
        with pytest.raises(AlgorithmNotSupportedError):
            self.make(3, "sorted")

    def test_unknown_backend(self):
        with pytest.raises(AlgorithmNotSupportedError):
            self.make(3, "btree")

    def test_out_of_domain_query_falls_back_to_scan(self):
        index, _ = self.make(3, "quadtree", max_ratio=2.0)
        scan, _ = self.make(3, "scan")
        box = Box(np.full(2, -50.0), np.full(2, -0.1))
        got = {tuple(p) for p in index.candidates(box).pairs}
        expected = {tuple(p) for p in scan.candidates(box).pairs}
        assert got == expected

    def test_empty_input(self):
        index = IntersectionIndex([], backend="scan")
        assert index.num_pairs == 0

    @pytest.mark.parametrize("backend", ["sorted", "quadtree", "cutting", "scan"])
    def test_candidates_many_matches_per_box(self, backend):
        dimensions = 2 if backend == "sorted" else 3
        index, _ = self.make(dimensions, backend, n=30)
        rng = np.random.default_rng(8)
        k = dimensions - 1
        boxes = []
        for _ in range(10):
            lo = -rng.uniform(0.5, 6.0, size=k)
            hi = np.minimum(lo + rng.uniform(0.0, 4.0, size=k), 0.0)
            boxes.append(Box(lo, hi))
        # One box escaping the indexed domain exercises the scan fallback.
        boxes.append(Box(np.full(k, -500.0), np.zeros(k)))
        batched = index.candidates_many(boxes)
        assert len(batched) == len(boxes)
        for box, got in zip(boxes, batched):
            expected = index.candidates(box)
            np.testing.assert_array_equal(got.pairs, expected.pairs)
            np.testing.assert_array_equal(got.rhs, expected.rhs)

    def test_candidates_many_empty_batch(self):
        index, _ = self.make(3, "quadtree")
        assert index.candidates_many([]) == []

    def test_candidate_set_to_hyperplanes(self):
        index, _ = self.make(2, "auto", n=6)
        box = Box(np.array([-5.0]), np.array([-0.1]))
        candidates = index.candidates(box)
        objects = candidates.to_hyperplanes()
        assert len(objects) == len(candidates)


class TestEclipseIndex:
    @pytest.mark.parametrize("backend", ["quadtree", "cutting", "scan"])
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_matches_baseline(self, backend, dimensions, distribution):
        data = generate_dataset(distribution, 120, dimensions, seed=5)
        ratios = RatioVector.uniform(0.36, 2.75, dimensions)
        expected = eclipse_baseline_indices(data, ratios).tolist()
        index = EclipseIndex(backend=backend).build(data)
        assert index.query_indices(ratios).tolist() == expected

    def test_reusable_across_ratio_ranges(self):
        data = generate_dataset("anti", 200, 3, seed=6)
        index = EclipseIndex(backend="quadtree").build(data)
        for low, high in ((0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19)):
            ratios = RatioVector.uniform(low, high, 3)
            expected = eclipse_baseline_indices(data, ratios).tolist()
            assert index.query_indices(ratios).tolist() == expected

    def test_query_before_build_raises(self):
        with pytest.raises(IndexNotBuiltError):
            EclipseIndex().query_indices((0.5, 2.0))

    def test_two_dimensional_backend_is_sorted(self, hotels):
        for backend in ("quadtree", "cutting"):
            index = EclipseIndex(backend=backend).build(hotels)
            assert index.backend == "sorted"

    def test_stats_populated(self, hotels, paper_ratio):
        index = EclipseIndex(backend="quadtree").build(hotels)
        index.query_indices(paper_ratio)
        stats = index.last_query_stats
        assert stats.num_skyline == 3
        assert stats.num_eclipse == 3

    def test_skyline_indices_exposed(self, hotels):
        index = EclipseIndex().build(hotels)
        assert index.skyline_indices.tolist() == [0, 1, 2]
        assert index.num_skyline_points == 3
        assert index.num_points == 4

    def test_worst_case_data(self):
        data = generate_worst_case(60, 3, seed=1)
        ratios = RatioVector.uniform(0.36, 2.75, 3)
        expected = eclipse_baseline_indices(data, ratios).tolist()
        for backend in ("quadtree", "cutting"):
            index = EclipseIndex(backend=backend, capacity=8).build(data)
            assert index.query_indices(ratios).tolist() == expected

    def test_skyline_and_1nn_instantiations(self):
        data = generate_dataset("inde", 150, 3, seed=8)
        index = EclipseIndex(backend="quadtree").build(data)
        from repro.skyline.api import skyline_indices

        wide = RatioVector.skyline(3)
        assert index.query_indices(wide).tolist() == skyline_indices(data).tolist()
        exact = RatioVector.exact([1.0, 1.0])
        scores = data @ np.ones(3)
        result = index.query_indices(exact)
        assert np.allclose(scores[result], scores.min())

    def test_duplicate_points(self):
        data = np.array([[1.0, 1.0], [1.0, 1.0], [0.5, 2.0], [3.0, 3.0]])
        ratios = RatioVector.uniform(0.5, 2.0, 2)
        expected = eclipse_baseline_indices(data, ratios).tolist()
        index = EclipseIndex().build(data)
        assert index.query_indices(ratios).tolist() == expected

    @pytest.mark.parametrize("backend", ["quadtree", "cutting", "scan"])
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_query_indices_many_matches_per_query(self, backend, dimensions):
        data = generate_dataset("anti", 150, dimensions, seed=3)
        index = EclipseIndex(backend=backend).build(data)
        rng = np.random.default_rng(21)
        specs = []
        for _ in range(12):
            low = float(rng.uniform(0.1, 1.0))
            specs.append(
                RatioVector.uniform(low, low + float(rng.uniform(0.1, 3.0)), dimensions)
            )
        batched = index.query_indices_many(specs)
        assert len(batched) == len(specs)
        for spec, got in zip(specs, batched):
            np.testing.assert_array_equal(got, index.query_indices(spec))

    def test_query_indices_many_requires_build(self):
        with pytest.raises(IndexNotBuiltError):
            EclipseIndex().query_indices_many([(0.5, 2.0)])

    def test_collinear_duplicates_raise_clear_error(self):
        # Collinear points make every pairwise intersection hyperplane a
        # scaled copy of one geometric hyperplane; the tree backends cannot
        # separate those, and the build must fail with one clear error
        # instead of silently constructing a maximal-depth useless tree.
        from repro.errors import DegenerateHyperplaneError

        t = np.arange(60, dtype=float)
        data = np.array([5.0, 5.0, 5.0]) + t[:, None] * np.array([1.0, -1.0, 0.5])
        for backend in ("quadtree", "cutting"):
            with pytest.raises(DegenerateHyperplaneError) as excinfo:
                EclipseIndex(backend=backend).build(data)
            assert "scan" in str(excinfo.value)  # actionable remedy named
        # The scan backend answers the same dataset exactly.
        index = EclipseIndex(backend="scan").build(data)
        ratios = RatioVector.uniform(0.5, 2.0, 3)
        expected = eclipse_baseline_indices(data, ratios).tolist()
        assert index.query_indices(ratios).tolist() == expected

    def test_empty_dataset(self):
        index = EclipseIndex().build(np.empty((0, 3)))
        assert index.query_indices(RatioVector.uniform(0.5, 2.0, 3)).size == 0

    def test_one_dimensional_rejected(self):
        with pytest.raises(DimensionMismatchError):
            EclipseIndex().build(np.ones((5, 1)))

    def test_dimension_mismatch_at_query(self, hotels):
        index = EclipseIndex().build(hotels)
        with pytest.raises(DimensionMismatchError):
            index.query_indices(RatioVector.uniform(0.5, 2.0, 3))

    def test_one_shot_helper(self, hotels, paper_ratio):
        assert eclipse_index_query(hotels, paper_ratio).tolist() == [0, 1, 2]

    def test_query_returns_rows(self, hotels, paper_ratio):
        index = EclipseIndex().build(hotels)
        np.testing.assert_allclose(index.query(paper_ratio), hotels[[0, 1, 2]])
