"""Tests for the kNN substrate: scoring, linear scan, kd-tree, convex hull."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import generate_dataset
from repro.errors import (
    DimensionMismatchError,
    EmptyDatasetError,
    InvalidDatasetError,
)
from repro.knn.convex_hull import convex_hull_indices, is_convex_hull_point
from repro.knn.kdtree import KDTree
from repro.knn.linear import knn, knn_indices, nearest_neighbor, nearest_neighbor_index
from repro.knn.scoring import (
    weighted_lp_score,
    weighted_lp_scores,
    weighted_sum,
    weighted_sums,
)


class TestScoring:
    def test_weighted_sum(self):
        assert weighted_sum([1.0, 6.0], [2.0, 1.0]) == pytest.approx(8.0)

    def test_weighted_sums(self, hotels):
        np.testing.assert_allclose(
            weighted_sums(hotels, [2.0, 1.0]), [8.0, 12.0, 13.0, 21.0]
        )

    def test_lp_score_p1_equals_weighted_sum_for_positive_data(self):
        assert weighted_lp_score([1.0, 6.0], [2.0, 1.0], p=1) == pytest.approx(8.0)

    def test_lp_score_p2(self):
        assert weighted_lp_score([3.0, 4.0], [1.0, 1.0], p=2) == pytest.approx(5.0)

    def test_lp_scores_vectorised(self, hotels):
        np.testing.assert_allclose(
            weighted_lp_scores(hotels, [1.0, 1.0], p=2),
            np.sqrt((hotels**2).sum(axis=1)),
        )

    def test_lp_rejects_p_below_one(self):
        with pytest.raises(InvalidDatasetError):
            weighted_lp_score([1.0, 2.0], [1.0, 1.0], p=0.5)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            weighted_sum([1.0, 2.0], [1.0])


class TestLinearKnn:
    def test_1nn_on_paper_example(self, hotels):
        assert nearest_neighbor_index(hotels, [2.0, 1.0]) == 0
        np.testing.assert_allclose(nearest_neighbor(hotels, [2.0, 1.0]), [1.0, 6.0])

    def test_knn_order(self, hotels):
        assert knn_indices(hotels, [2.0, 1.0], k=3).tolist() == [0, 1, 2]

    def test_k_capped_at_n(self, hotels):
        assert knn_indices(hotels, [1.0, 1.0], k=10).size == 4

    def test_k_must_be_positive(self, hotels):
        with pytest.raises(InvalidDatasetError):
            knn_indices(hotels, [1.0, 1.0], k=0)

    def test_empty_dataset(self):
        with pytest.raises(EmptyDatasetError):
            knn_indices(np.empty((0, 2)), [1.0, 1.0])

    def test_ties_broken_by_position(self):
        data = np.array([[2.0, 0.0], [0.0, 2.0], [1.0, 1.0]])
        assert knn_indices(data, [1.0, 1.0], k=3).tolist() == [0, 1, 2]

    def test_knn_returns_rows(self, hotels):
        np.testing.assert_allclose(knn(hotels, [2.0, 1.0], k=2), hotels[[0, 1]])

    def test_lp_exponent(self, hotels):
        l1 = knn_indices(hotels, [1.0, 1.0], k=4, p=1).tolist()
        l2 = knn_indices(hotels, [1.0, 1.0], k=4, p=2).tolist()
        assert set(l1) == set(l2) == {0, 1, 2, 3}


class TestKDTree:
    def test_matches_linear_scan(self):
        data = generate_dataset("inde", 300, 3, seed=4)
        tree = KDTree(data)
        for k in (1, 5, 20):
            _, tree_idx = tree.query(k=k, p=1.0, weights=[1.0, 1.0, 1.0])
            linear_idx = knn_indices(data, [1.0, 1.0, 1.0], k=k, p=1.0)
            tree_scores = sorted(np.round(data[tree_idx].sum(axis=1), 9))
            linear_scores = sorted(np.round(data[linear_idx].sum(axis=1), 9))
            assert tree_scores == linear_scores

    def test_euclidean_query_from_arbitrary_point(self):
        data = generate_dataset("inde", 200, 2, seed=5)
        tree = KDTree(data)
        query = [0.5, 0.5]
        distances, indices = tree.query(query, k=3)
        brute = np.sqrt(((data - query) ** 2).sum(axis=1))
        np.testing.assert_allclose(np.sort(distances), np.sort(brute)[:3])
        assert set(indices.tolist()) == set(np.argsort(brute)[:3].tolist())

    def test_distances_sorted_ascending(self):
        data = generate_dataset("anti", 100, 3, seed=6)
        distances, _ = KDTree(data).query(k=10)
        assert np.all(np.diff(distances) >= -1e-12)

    def test_duplicated_points(self):
        data = np.tile([[1.0, 1.0]], (50, 1))
        tree = KDTree(data)
        distances, indices = tree.query([1.0, 1.0], k=5)
        np.testing.assert_allclose(distances, 0.0)
        assert indices.size == 5

    def test_validation(self):
        with pytest.raises(EmptyDatasetError):
            KDTree(np.empty((0, 2)))
        tree = KDTree([[1.0, 2.0]])
        with pytest.raises(InvalidDatasetError):
            tree.query(k=0)
        with pytest.raises(DimensionMismatchError):
            tree.query([1.0, 2.0, 3.0])
        with pytest.raises(InvalidDatasetError):
            tree.query([1.0, 2.0], weights=[-1.0, 1.0])


class TestConvexHull:
    def test_paper_example(self, hotels):
        assert convex_hull_indices(hotels).tolist() == [0, 2]
        assert is_convex_hull_point(hotels, 0)
        assert not is_convex_hull_point(hotels, 3)

    def test_hull_subset_of_skyline(self, distribution):
        from repro.skyline.api import skyline_indices

        data = generate_dataset(distribution, 100, 2, seed=3)
        hull = set(convex_hull_indices(data).tolist())
        skyline = set(skyline_indices(data).tolist())
        assert hull <= skyline

    def test_every_1nn_winner_is_on_hull(self):
        data = generate_dataset("anti", 80, 2, seed=8)
        hull = set(convex_hull_indices(data).tolist())
        rng = np.random.default_rng(0)
        for _ in range(50):
            w = rng.random(2) + 1e-3
            assert nearest_neighbor_index(data, w) in hull

    def test_single_point(self):
        assert convex_hull_indices([[1.0, 2.0]]).tolist() == [0]

    def test_empty(self):
        assert convex_hull_indices(np.empty((0, 2))).size == 0
