"""Unit tests of the index advisor (:mod:`repro.perf.advisor`).

The advisor's contract: exact resident-byte accounting through the arena
``nbytes`` rollups, a memoised what-if estimator with honest
``cost_requests``/``cache_hits`` counters, greedy budgeted admission gated
by ``min_cost_improvement``, benefit-per-byte eviction, and an
``REPRO_INDEX_BUDGET_MB`` environment knob that never fails silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import plan_query
from repro.data.generators import generate_dataset
from repro.index.eclipse_index import EclipseIndex
from repro.perf.advisor import (
    FAILURE_ENTRY_BYTES,
    IndexAdvisor,
    WhatIfCostModel,
    estimate_index_nbytes,
    index_budget_from_env,
    resolve_index_budget,
    validate_index_budget,
)
from repro.perf.arena import GrowableArena
from repro.perf.blocking import GrowableBuffer


class TestNbytesAccounting:
    def test_arena_counts_capacity_not_just_valid_prefix(self):
        arena = GrowableArena(np.zeros((4, 3)), capacity=32)
        assert arena.nbytes() == 32 * 3 * 8  # full headroom, not 4 rows

    def test_arena_counts_resident_spare_buffer(self):
        arena = GrowableArena(np.arange(8, dtype=float))
        before = arena.nbytes()
        arena.insert(np.array([0, 4]), np.array([100.0, 200.0]))
        # The sorted-merge path keeps a spare buffer of equal capacity.
        assert arena.nbytes() >= 2 * before

    def test_growable_buffer_counts_all_stores(self):
        buf = GrowableBuffer(3, capacity=16, track_sums=True)
        assert buf.nbytes() == 16 * 3 * 8 + 16 * np.dtype(np.intp).itemsize + 16 * 8

    def test_index_rollup_positive_and_grows_with_appends(self):
        data = generate_dataset("ANTI", 400, 3, seed=3)
        index = EclipseIndex(backend="quadtree").build(data)
        base = index.nbytes()
        assert base > 0
        # The rollup must dominate the raw pair-arena payload it contains.
        pairs = index.intersection_index.num_pairs
        assert base >= pairs * 2 * np.dtype(np.intp).itemsize

    def test_unbuilt_index_is_free(self):
        assert EclipseIndex().nbytes() == 0

    def test_estimate_is_a_sane_admission_proxy(self):
        data = generate_dataset("ANTI", 800, 3, seed=5)
        index = EclipseIndex(backend="cutting").build(data)
        u = index.num_skyline_points
        estimate = estimate_index_nbytes(u, 3)
        actual = index.nbytes()
        # Within an order of magnitude either way is enough for feasibility.
        assert actual / 10 <= estimate <= actual * 10


class TestBudgetResolution:
    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BUDGET_MB", "1")
        assert resolve_index_budget(123456) == 123456

    def test_environment_used_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BUDGET_MB", "2")
        assert resolve_index_budget(None) == 2 * 1024 * 1024

    def test_default_is_unbounded(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        assert resolve_index_budget(None) is None

    def test_unparseable_env_warns_and_stays_unbounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BUDGET_MB", "lots")
        with pytest.warns(RuntimeWarning, match="unparseable"):
            assert index_budget_from_env() is None

    def test_non_positive_env_warns_and_stays_unbounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BUDGET_MB", "0")
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert index_budget_from_env() is None

    def test_fractional_env_resolves_to_bytes(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BUDGET_MB", "0.5")
        assert index_budget_from_env() == 512 * 1024

    def test_validate_rejects_non_positive(self):
        with pytest.raises(ValueError):
            validate_index_budget(0)
        with pytest.raises(ValueError):
            validate_index_budget(-5)
        assert validate_index_budget(None) is None
        assert validate_index_budget(7) == 7


class TestWhatIfCostModel:
    def test_counters_and_memo(self):
        model = WhatIfCostModel()
        first = model.plan_query(1000, 3, num_queries=8, num_skyline=120)
        again = model.plan_query(1000, 3, num_queries=8, num_skyline=120)
        other = model.plan_query(2000, 3, num_queries=8, num_skyline=120)
        assert first is again  # frozen plans are shared from the memo
        assert other is not first
        assert model.cost_requests == 3
        assert model.cache_hits == 1

    def test_matches_unmemoised_planner(self):
        model = WhatIfCostModel()
        got = model.plan_query(5000, 4, num_queries=16, num_skyline=900, threads=2)
        want = plan_query(5000, 4, num_queries=16, num_skyline=900, threads=2)
        assert got.method == want.method
        assert got.estimates == want.estimates

    def test_update_plans_memoised(self):
        model = WhatIfCostModel()
        first = model.plan_update(
            1000, 3, 10, 10, num_skyline=100, artifact="index",
            index_backend="quadtree", dead_fraction=0.1, num_pairs=4000,
        )
        again = model.plan_update(
            1000, 3, 10, 10, num_skyline=100, artifact="index",
            index_backend="quadtree", dead_fraction=0.1, num_pairs=4000,
        )
        assert first is again
        assert model.cache_hits == 1


class TestEvictionPolicy:
    def test_evicts_lowest_benefit_per_byte_first(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        advisor = IndexAdvisor(budget_bytes=1000)
        advisor.credit(("cold",), 1.0, nbytes=600)
        advisor.credit(("hot",), 1000.0, nbytes=600)
        evicted = advisor.enforce({("cold",): 600, ("hot",): 600})
        assert evicted == [("cold",)]
        assert advisor.bytes_resident == 600
        assert advisor.evictions == 1

    def test_no_budget_never_evicts(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        advisor = IndexAdvisor()
        advisor.credit(("a",), 0.0, nbytes=10**9)
        assert advisor.enforce({("a",): 10**9}) == []
        assert advisor.bytes_resident == 10**9

    def test_failure_entries_counted_and_evictable(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        advisor = IndexAdvisor(budget_bytes=FAILURE_ENTRY_BYTES * 3)
        for name in ("f1", "f2", "f3", "f4", "f5"):
            advisor.on_failure((name,))
        evicted = advisor.enforce({})
        assert len(evicted) == 2  # down to 3 * FAILURE_ENTRY_BYTES
        assert advisor.bytes_resident == FAILURE_ENTRY_BYTES * 3

    def test_recency_breaks_benefit_ties(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        advisor = IndexAdvisor(budget_bytes=1000)
        advisor.credit(("old",), 5.0, nbytes=600)
        for _ in range(50):
            advisor.credit(("fresh",), 5.0, nbytes=600)
        evicted = advisor.enforce({("old",): 600, ("fresh",): 600})
        assert evicted == [("old",)]  # decay demoted the idle entry


class TestAdmission:
    def _plan(self, num_queries):
        # A shape where batches clearly favour an index build.
        return plan_query(20_000, 3, num_queries=num_queries, num_skyline=500)

    def test_plan_improvement_helpers(self):
        plan = self._plan(64)
        assert plan.uses_index
        best = plan.best_alternative_cost()
        index_total = plan.estimate_for(plan.method).total(plan.num_queries)
        assert best > index_total  # the planner chose the index for a reason
        assert plan.index_improvement_ratio() == pytest.approx(best / index_total)
        single = plan_query(200, 3, num_queries=1)
        assert not single.uses_index
        assert single.index_improvement_ratio() is None
        assert single.best_alternative_cost() is not None

    def test_unbounded_always_admits(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        advisor = IndexAdvisor()
        assert advisor.should_build(self._plan(64))

    def test_oversized_projection_is_declined(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        advisor = IndexAdvisor(budget_bytes=1024)  # far below any projection
        plan = self._plan(64)
        assert plan.uses_index
        assert not advisor.should_build(plan)
        assert advisor.builds_skipped == 1

    def test_fitting_projection_is_admitted(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        advisor = IndexAdvisor(budget_bytes=512 * 1024 * 1024)
        plan = self._plan(64)
        assert plan.uses_index
        assert advisor.should_build(plan)

    def test_strong_residents_are_not_displaced(self, monkeypatch):
        monkeypatch.delenv("REPRO_INDEX_BUDGET_MB", raising=False)
        plan = self._plan(64)
        need = estimate_index_nbytes(500, 3)
        advisor = IndexAdvisor(budget_bytes=need + 100)
        # A resident earning far more per byte than the newcomer projects.
        advisor.credit(("hot",), 1e18, nbytes=need)
        advisor.enforce({("hot",): need})
        assert not advisor.should_build(plan)
        # A worthless resident is displaceable: admission succeeds.
        weak = IndexAdvisor(budget_bytes=need + 100)
        weak.credit(("cold",), 0.0, nbytes=need)
        weak.enforce({("cold",): need})
        assert weak.should_build(plan)
