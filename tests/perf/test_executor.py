"""Unit tests of the shared kernel executor (:mod:`repro.perf.executor`).

The executor's contract: ``threads=1`` is the exact serial code path; any
worker count returns byte-identical results (workers only write disjoint
preallocated slices); the memory budget divides across workers; and the
``REPRO_KERNEL_THREADS`` environment variable never fails silently.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.perf.blocking import DEFAULT_MEMORY_CAP_BYTES, memory_cap_bytes
from repro.perf.executor import (
    MAX_THREADS,
    MIN_PROCESS_DISPATCH_BYTES,
    VALID_BACKENDS,
    ShmKernel,
    kernel_context,
    map_blocks,
    parallel_block_size,
    parallel_matmul,
    resolve_backend,
    resolve_dtype,
    resolve_threads,
    run_tasks,
    split_memory_cap,
    validate_backend,
    validate_dtype,
    validate_threads,
)


class TestKnobResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "8")
        with kernel_context(threads=4):
            assert resolve_threads(2) == 2

    def test_context_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "8")
        with kernel_context(threads=3):
            assert resolve_threads() == 3
        assert resolve_threads() == 8

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        assert resolve_threads() == 1
        assert resolve_dtype() == "float64"

    def test_env_clamped_to_max(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", str(MAX_THREADS * 10))
        assert resolve_threads() == MAX_THREADS

    def test_unparseable_env_warns_and_runs_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "many")
        with pytest.warns(RuntimeWarning, match="unparseable"):
            assert resolve_threads() == 1

    def test_non_positive_env_warns_and_runs_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "0")
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert resolve_threads() == 1

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            validate_threads(0)
        with pytest.raises(ValueError):
            validate_dtype("float16")
        assert validate_threads(None) is None
        assert validate_dtype(None) is None
        assert validate_threads(MAX_THREADS + 1) == MAX_THREADS

    def test_nested_contexts_compose_and_restore(self):
        with kernel_context(threads=4, dtype="float32"):
            assert resolve_threads() == 4
            assert resolve_dtype() == "float32"
            with kernel_context(threads=2):
                # dtype untouched by the inner context.
                assert resolve_threads() == 2
                assert resolve_dtype() == "float32"
            assert resolve_threads() == 4
        assert resolve_dtype() == "float64"

    def test_context_is_thread_local(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        seen = {}

        def probe():
            seen["threads"] = resolve_threads()

        with kernel_context(threads=8):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["threads"] == 1


class TestBackendResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "process")
        with kernel_context(backend="serial"):
            assert resolve_backend("thread") == "thread"

    def test_context_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "serial")
        with kernel_context(backend="process"):
            assert resolve_backend() == "process"
        assert resolve_backend() == "serial"

    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert resolve_backend() == "thread"

    def test_misconfigured_env_warns_and_uses_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "gpu")
        with pytest.warns(RuntimeWarning, match="REPRO_KERNEL_BACKEND"):
            assert resolve_backend() == "thread"

    def test_in_worker_resolves_serial(self):
        seen = []

        def worker(i):
            seen.append(resolve_backend())
            return i

        with kernel_context(threads=2, backend="process"):
            run_tasks(worker, [(i,) for i in range(4)])
        assert seen == ["serial"] * 4

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            validate_backend("gpu")
        assert validate_backend(None) is None
        for backend in VALID_BACKENDS:
            assert validate_backend(backend) == backend


def _square_block_shm(arrays, start, stop):
    arrays["out"][start:stop] = arrays["a"][start:stop] ** 2


class TestProcessDispatch:
    def _kernel(self, a, out, hint=1 << 21):
        return ShmKernel(
            _square_block_shm,
            inputs={"a": a},
            outputs={"out": out},
            work_hint_bytes=hint,
        )

    def test_process_backend_matches_serial(self):
        rng = np.random.default_rng(21)
        a = rng.normal(size=(1200, 40))
        out = np.zeros_like(a)
        tasks = [(i, min(i + 100, 1200)) for i in range(0, 1200, 100)]

        def worker(start, stop):
            out[start:stop] = a[start:stop] ** 2

        with kernel_context(threads=2, backend="process"):
            run_tasks(worker, tasks, shm_kernel=self._kernel(a, out))
        assert np.array_equal(out, a**2)

    def test_tiny_dispatch_stays_inline(self):
        a = np.ones((8, 4))
        out = np.zeros_like(a)
        calls = []

        def worker(start, stop):
            calls.append(threading.current_thread().name)
            out[start:stop] = a[start:stop] ** 2

        kernel = self._kernel(a, out, hint=None)
        assert kernel.dispatch_weight() < MIN_PROCESS_DISPATCH_BYTES
        with kernel_context(threads=2, backend="process"):
            run_tasks(worker, [(0, 4), (4, 8)], shm_kernel=kernel)
        # The closure ran inline in the dispatching thread, not in a pool.
        assert calls == [threading.current_thread().name] * 2
        assert np.array_equal(out, a**2)

    def test_missing_kernel_falls_back_to_threads(self):
        with kernel_context(threads=2, backend="process"):
            got = run_tasks(lambda i: i * 3, [(i,) for i in range(6)])
        assert got == [i * 3 for i in range(6)]

    def test_unpicklable_kernel_falls_back_inline(self):
        a = np.ones((100, 50))
        out = np.zeros_like(a)
        bad = ShmKernel(
            lambda arrays, start, stop: None,  # lambdas cannot pickle
            inputs={"a": a},
            outputs={"out": out},
            work_hint_bytes=1 << 21,
        )

        def worker(start, stop):
            out[start:stop] = a[start:stop] + 1

        with kernel_context(threads=2, backend="process"):
            run_tasks(worker, [(0, 50), (50, 100)], shm_kernel=bad)
        assert np.array_equal(out, a + 1)

    def test_process_telemetry_counted(self):
        class Sink:
            parallel_chunks = 0
            threads_used = 1
            process_dispatches = 0
            process_chunks = 0
            shm_peak_bytes = 0

        sink = Sink()
        a = np.ones((600, 300))
        out = np.zeros_like(a)
        tasks = [(0, 200), (200, 400), (400, 600)]

        def worker(start, stop):
            out[start:stop] = a[start:stop] ** 2

        with kernel_context(threads=2, backend="process", stats=sink):
            run_tasks(worker, tasks, shm_kernel=self._kernel(a, out))
        assert sink.process_dispatches == 1
        assert sink.process_chunks == 3
        assert sink.shm_peak_bytes >= a.nbytes + out.nbytes
        assert sink.threads_used == 2

    def test_parallel_matmul_process_backend_byte_identical(self):
        rng = np.random.default_rng(23)
        a = rng.normal(size=(4000, 60))
        b = rng.normal(size=(60, 40))
        ref = a @ b
        with kernel_context(threads=2, backend="process"):
            got = parallel_matmul(a, b, min_rows=16)
        assert np.array_equal(got, ref)


class TestDispatch:
    def test_run_tasks_preserves_task_order(self):
        tasks = [(i,) for i in range(20)]
        assert run_tasks(lambda i: i * i, tasks, threads=4) == [
            i * i for i in range(20)
        ]

    def test_run_tasks_serial_path_uses_no_pool(self):
        names = []
        run_tasks(
            lambda i: names.append(threading.current_thread().name),
            [(0,), (1,)],
            threads=1,
        )
        assert names == [threading.current_thread().name] * 2

    def test_run_tasks_propagates_worker_exception(self):
        def worker(i):
            if i == 3:
                raise RuntimeError("boom")
            return i

        with pytest.raises(RuntimeError, match="boom"):
            run_tasks(worker, [(i,) for i in range(6)], threads=2)

    def test_nested_dispatch_from_worker_is_serial(self):
        inner_counts = []

        def worker(i):
            inner_counts.append(resolve_threads())
            return i

        run_tasks(worker, [(i,) for i in range(4)], threads=2)
        assert inner_counts == [1, 1, 1, 1]

    def test_map_blocks_disjoint_writes(self):
        out = np.zeros(1000, dtype=np.intp)

        def worker(start, stop):
            out[start:stop] = np.arange(start, stop)

        map_blocks(worker, 1000, 64, threads=4)
        assert np.array_equal(out, np.arange(1000))

    def test_telemetry_counted_in_dispatcher(self):
        class Sink:
            parallel_chunks = 0
            threads_used = 1
            float32_fastpath_hits = 0
            float32_exact_fallbacks = 0

        sink = Sink()
        with kernel_context(threads=4, stats=sink):
            run_tasks(lambda i: i, [(i,) for i in range(10)])
        assert sink.parallel_chunks == 10
        assert sink.threads_used == 4


class TestBudgets:
    def test_split_memory_cap_divides(self):
        assert split_memory_cap(1024, 4) == 256
        assert split_memory_cap(1024, 1) == 1024
        assert split_memory_cap(None, 2) == DEFAULT_MEMORY_CAP_BYTES // 2
        assert split_memory_cap(3, 64) == 1  # never zero

    def test_split_memory_cap_serial_passthrough(self):
        assert split_memory_cap(None, 1) == memory_cap_bytes(None)

    def test_parallel_block_size_creates_enough_blocks(self):
        assert parallel_block_size(1000, 1000, 4) == 250
        assert parallel_block_size(1000, 100, 4) == 100  # already enough
        assert parallel_block_size(1000, 1000, 1) == 1000
        assert parallel_block_size(3, 512, 8) == 1


class TestParallelMatmul:
    def test_byte_identical_to_serial(self):
        rng = np.random.default_rng(11)
        a = rng.normal(size=(5000, 7))
        b = rng.normal(size=(7, 13))
        ref = a @ b
        for threads in (2, 5, 8):
            got = parallel_matmul(a, b, threads=threads, min_rows=16)
            assert got.dtype == ref.dtype
            assert np.array_equal(got, ref)

    def test_small_products_stay_serial(self):
        a = np.ones((4, 3))
        b = np.ones((3, 2))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert np.array_equal(parallel_matmul(a, b, threads=8), a @ b)
