"""Unit tests of the shared kernel executor (:mod:`repro.perf.executor`).

The executor's contract: ``threads=1`` is the exact serial code path; any
worker count returns byte-identical results (workers only write disjoint
preallocated slices); the memory budget divides across workers; and the
``REPRO_KERNEL_THREADS`` environment variable never fails silently.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.perf.blocking import DEFAULT_MEMORY_CAP_BYTES, memory_cap_bytes
from repro.perf.executor import (
    MAX_THREADS,
    kernel_context,
    map_blocks,
    parallel_block_size,
    parallel_matmul,
    resolve_dtype,
    resolve_threads,
    run_tasks,
    split_memory_cap,
    validate_dtype,
    validate_threads,
)


class TestKnobResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "8")
        with kernel_context(threads=4):
            assert resolve_threads(2) == 2

    def test_context_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "8")
        with kernel_context(threads=3):
            assert resolve_threads() == 3
        assert resolve_threads() == 8

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        assert resolve_threads() == 1
        assert resolve_dtype() == "float64"

    def test_env_clamped_to_max(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", str(MAX_THREADS * 10))
        assert resolve_threads() == MAX_THREADS

    def test_unparseable_env_warns_and_runs_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "many")
        with pytest.warns(RuntimeWarning, match="unparseable"):
            assert resolve_threads() == 1

    def test_non_positive_env_warns_and_runs_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "0")
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert resolve_threads() == 1

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            validate_threads(0)
        with pytest.raises(ValueError):
            validate_dtype("float16")
        assert validate_threads(None) is None
        assert validate_dtype(None) is None
        assert validate_threads(MAX_THREADS + 1) == MAX_THREADS

    def test_nested_contexts_compose_and_restore(self):
        with kernel_context(threads=4, dtype="float32"):
            assert resolve_threads() == 4
            assert resolve_dtype() == "float32"
            with kernel_context(threads=2):
                # dtype untouched by the inner context.
                assert resolve_threads() == 2
                assert resolve_dtype() == "float32"
            assert resolve_threads() == 4
        assert resolve_dtype() == "float64"

    def test_context_is_thread_local(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        seen = {}

        def probe():
            seen["threads"] = resolve_threads()

        with kernel_context(threads=8):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["threads"] == 1


class TestDispatch:
    def test_run_tasks_preserves_task_order(self):
        tasks = [(i,) for i in range(20)]
        assert run_tasks(lambda i: i * i, tasks, threads=4) == [
            i * i for i in range(20)
        ]

    def test_run_tasks_serial_path_uses_no_pool(self):
        names = []
        run_tasks(
            lambda i: names.append(threading.current_thread().name),
            [(0,), (1,)],
            threads=1,
        )
        assert names == [threading.current_thread().name] * 2

    def test_run_tasks_propagates_worker_exception(self):
        def worker(i):
            if i == 3:
                raise RuntimeError("boom")
            return i

        with pytest.raises(RuntimeError, match="boom"):
            run_tasks(worker, [(i,) for i in range(6)], threads=2)

    def test_nested_dispatch_from_worker_is_serial(self):
        inner_counts = []

        def worker(i):
            inner_counts.append(resolve_threads())
            return i

        run_tasks(worker, [(i,) for i in range(4)], threads=2)
        assert inner_counts == [1, 1, 1, 1]

    def test_map_blocks_disjoint_writes(self):
        out = np.zeros(1000, dtype=np.intp)

        def worker(start, stop):
            out[start:stop] = np.arange(start, stop)

        map_blocks(worker, 1000, 64, threads=4)
        assert np.array_equal(out, np.arange(1000))

    def test_telemetry_counted_in_dispatcher(self):
        class Sink:
            parallel_chunks = 0
            threads_used = 1
            float32_fastpath_hits = 0
            float32_exact_fallbacks = 0

        sink = Sink()
        with kernel_context(threads=4, stats=sink):
            run_tasks(lambda i: i, [(i,) for i in range(10)])
        assert sink.parallel_chunks == 10
        assert sink.threads_used == 4


class TestBudgets:
    def test_split_memory_cap_divides(self):
        assert split_memory_cap(1024, 4) == 256
        assert split_memory_cap(1024, 1) == 1024
        assert split_memory_cap(None, 2) == DEFAULT_MEMORY_CAP_BYTES // 2
        assert split_memory_cap(3, 64) == 1  # never zero

    def test_split_memory_cap_serial_passthrough(self):
        assert split_memory_cap(None, 1) == memory_cap_bytes(None)

    def test_parallel_block_size_creates_enough_blocks(self):
        assert parallel_block_size(1000, 1000, 4) == 250
        assert parallel_block_size(1000, 100, 4) == 100  # already enough
        assert parallel_block_size(1000, 1000, 1) == 1000
        assert parallel_block_size(3, 512, 8) == 1


class TestParallelMatmul:
    def test_byte_identical_to_serial(self):
        rng = np.random.default_rng(11)
        a = rng.normal(size=(5000, 7))
        b = rng.normal(size=(7, 13))
        ref = a @ b
        for threads in (2, 5, 8):
            got = parallel_matmul(a, b, threads=threads, min_rows=16)
            assert got.dtype == ref.dtype
            assert np.array_equal(got, ref)

    def test_small_products_stay_serial(self):
        a = np.ones((4, 3))
        b = np.ones((3, 2))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert np.array_equal(parallel_matmul(a, b, threads=8), a @ b)
