"""Byte-identical parity of the parallel, float32, and process kernel paths.

The executor's whole contract is that ``threads``, ``dtype``, and
``backend`` are pure performance knobs: skylines, index answers, batch
answers, and update streams must be byte-identical across every worker
count, compute dtype, and dispatch backend (serial inline, shared thread
pool, shared-memory process pool), on every distribution — including
datasets full of exact duplicates and single-attribute ties, which is
where the float32 fast path must fall back to the exact float64 kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.perf import executor
from repro.perf.executor import kernel_context
from repro.skyline.api import skyline_indices
from repro.skyline.kernels import block_sfs_indices, dominated_mask

THREADS = (1, 2, 8)
DTYPES = ("float64", "float32")
BACKENDS = ("quadtree", "cutting")
KERNEL_BACKENDS = ("serial", "thread", "process")


def _tie_heavy(n: int, d: int, seed: int) -> np.ndarray:
    """A dataset dense in duplicates and per-attribute ties."""
    rng = np.random.default_rng(seed)
    base = np.round(rng.random((n, d)) * 4) / 4  # heavy value collisions
    dup = base[rng.integers(0, n, size=n // 4)]  # exact duplicate rows
    out = np.vstack([base, dup])
    rng.shuffle(out)
    return out


DATASETS = [
    generate_dataset("ANTI", 300, 3, seed=1),
    generate_dataset("INDE", 250, 4, seed=2),
    generate_dataset("CORR", 200, 3, seed=3),
    _tie_heavy(120, 3, seed=4),
    _tie_heavy(90, 4, seed=5),
]


@pytest.mark.parametrize("kernel_backend", KERNEL_BACKENDS)
@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_skyline_parity(threads, dtype, kernel_backend):
    for data in DATASETS:
        ref = skyline_indices(data, method="auto")
        with kernel_context(threads=threads, dtype=dtype, backend=kernel_backend):
            got = skyline_indices(data, method="auto")
        assert np.array_equal(ref, got)


@pytest.mark.parametrize("kernel_backend", KERNEL_BACKENDS)
@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_kernel_parity(threads, dtype, kernel_backend):
    rng = np.random.default_rng(6)
    for data in DATASETS:
        k = min(60, data.shape[0] // 2)
        dominators = data[rng.choice(data.shape[0], size=k, replace=False)]
        ref_mask = dominated_mask(data, dominators)
        ref_sfs = block_sfs_indices(data)
        with kernel_context(backend=kernel_backend):
            got_mask = dominated_mask(
                data, dominators, threads=threads, compute_dtype=dtype
            )
            got_sfs = block_sfs_indices(
                data, threads=threads, compute_dtype=dtype
            )
        assert np.array_equal(ref_mask, got_mask)
        assert np.array_equal(ref_sfs, got_sfs)


@pytest.mark.parametrize("backend", BACKENDS)
def test_query_answer_parity_across_matrix(backend):
    for data in DATASETS[:3]:
        d = data.shape[1]
        specs = [
            RatioVector.uniform(0.3, 2.4, d),
            RatioVector.uniform(0.6, 1.4, d),
            RatioVector.uniform(0.15, 3.0, d),
        ]
        ref_session = DatasetSession(data)
        ref = [r.indices for r in ref_session.run_batch(specs, method=backend)]
        ref_tran = [
            r.indices for r in ref_session.run_batch(specs, method="transform")
        ]
        for threads in THREADS:
            for dtype in DTYPES:
                for kernel_backend in KERNEL_BACKENDS:
                    session = DatasetSession(
                        data,
                        threads=threads,
                        dtype=dtype,
                        backend=kernel_backend,
                    )
                    got = [
                        r.indices
                        for r in session.run_batch(specs, method=backend)
                    ]
                    got_tran = [
                        r.indices
                        for r in session.run_batch(specs, method="transform")
                    ]
                    for a, b in zip(ref, got):
                        assert np.array_equal(a, b)
                    for a, b in zip(ref_tran, got_tran):
                        assert np.array_equal(a, b)


@pytest.mark.parametrize("kernel_backend", KERNEL_BACKENDS)
@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("dtype", DTYPES)
def test_update_stream_parity(threads, dtype, kernel_backend):
    data = generate_dataset("ANTI", 220, 3, seed=7)
    extra = generate_dataset("ANTI", 60, 3, seed=8)
    specs = [RatioVector.uniform(0.4, 2.0, 3)]

    def drive(session):
        answers = []
        session.run_batch(specs, method="cutting")
        session.apply_updates(inserts=extra[:30], deletes=np.arange(0, 40, 2))
        answers.extend(
            r.indices for r in session.run_batch(specs, method="cutting")
        )
        session.apply_updates(inserts=extra[30:], deletes=np.arange(5, 25))
        answers.extend(
            r.indices for r in session.run_batch(specs, method="cutting")
        )
        answers.append(session.skyline())
        return answers

    ref = drive(DatasetSession(data))
    got = drive(
        DatasetSession(data, threads=threads, dtype=dtype, backend=kernel_backend)
    )
    for a, b in zip(ref, got):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("dtype", DTYPES)
def test_process_backend_engages_and_stays_byte_identical(monkeypatch, dtype):
    # The small parity datasets sit under the dispatch-overhead gate, so
    # the matrix above proves parity of the *selection* logic.  This test
    # removes the gate to force true cross-process execution and asserts
    # (a) the process pool really ran — the telemetry counters move — and
    # (b) the answers are still byte-identical to the serial session.
    monkeypatch.setattr(executor, "MIN_PROCESS_DISPATCH_BYTES", 0)
    data = generate_dataset("ANTI", 400, 3, seed=11)
    specs = [
        RatioVector.uniform(0.3, 2.4, 3),
        RatioVector.uniform(0.6, 1.4, 3),
    ]
    ref_session = DatasetSession(data)
    ref = [r.indices for r in ref_session.run_batch(specs, method="transform")]
    ref_sky = ref_session.skyline()

    session = DatasetSession(data, threads=2, dtype=dtype, backend="process")
    got = [r.indices for r in session.run_batch(specs, method="transform")]
    for a, b in zip(ref, got):
        assert np.array_equal(a, b)
    assert np.array_equal(ref_sky, session.skyline())
    assert session.stats.process_dispatches > 0
    assert session.stats.process_chunks >= session.stats.process_dispatches
    assert session.stats.shm_peak_bytes > 0


def test_float32_fallback_triggers_and_is_exact():
    # Rows tied with their only dominator in float32 cannot be decided on
    # the fast path; with no other dominator around, every such row must
    # take the exact float64 fallback — and still match the serial answer.
    rng = np.random.default_rng(9)
    dominators = rng.random((1, 4))
    cand = rng.random((64, 4)) + 1.0  # all dominated strictly
    cand[:8] = dominators[0]  # exact duplicates: ambiguous, not dominated
    ref = dominated_mask(cand, dominators)

    session_stats = type(
        "Sink",
        (),
        {
            "parallel_chunks": 0,
            "threads_used": 1,
            "float32_fastpath_hits": 0,
            "float32_exact_fallbacks": 0,
        },
    )()
    with kernel_context(dtype="float32", stats=session_stats):
        got = dominated_mask(cand, dominators)
    assert np.array_equal(ref, got)
    assert session_stats.float32_exact_fallbacks >= 8
    assert session_stats.float32_fastpath_hits >= 1


def test_float32_near_tie_rows_stay_exact():
    # Values that collide in float32 but differ in float64: the fast path
    # must not declare dominance either way without the exact re-check.
    eps = 1e-12  # far below float32 resolution
    dominators = np.array([[0.5, 0.5, 0.5]])
    cand = np.array(
        [
            [0.5 + eps, 0.5 + eps, 0.5 + eps],  # dominated in f64, tied in f32
            [0.5 - eps, 0.5, 0.5],  # not dominated (better first attr)
            [0.5, 0.5, 0.5],  # exact duplicate: not dominated
        ]
    )
    ref = dominated_mask(cand, dominators)
    assert ref.tolist() == [True, False, False]
    with kernel_context(dtype="float32"):
        got = dominated_mask(cand, dominators)
    assert np.array_equal(ref, got)


def test_snapshot_roundtrip_keeps_kernel_knobs(tmp_path):
    data = generate_dataset("INDE", 120, 3, seed=10)
    session = DatasetSession(data, threads=4, dtype="float32", backend="process")
    session.skyline()
    path = str(tmp_path / "session.snap")
    session.save_snapshot(path)
    loaded, _ = DatasetSession.load_snapshot(path)
    assert loaded.threads == 4
    assert loaded.compute_dtype == "float32"
    assert loaded.kernel_backend == "process"
    assert np.array_equal(loaded.skyline(), session.skyline())


def test_warm_snapshot_restart_parity_across_backends(tmp_path):
    # Snapshot a session mid-stream, restore it under every dispatch
    # backend, continue the same update/query tail, and demand identical
    # answers — the warm-restart analogue of the update-stream parity.
    data = generate_dataset("ANTI", 200, 3, seed=12)
    extra = generate_dataset("ANTI", 40, 3, seed=13)
    specs = [RatioVector.uniform(0.4, 2.0, 3)]

    seed_session = DatasetSession(data)
    seed_session.run_batch(specs, method="cutting")
    seed_session.apply_updates(inserts=extra[:20], deletes=np.arange(0, 30, 3))
    path = str(tmp_path / "mid-stream.snap")
    seed_session.save_snapshot(path)

    def tail(session):
        answers = [
            r.indices for r in session.run_batch(specs, method="cutting")
        ]
        session.apply_updates(inserts=extra[20:], deletes=np.arange(2, 12))
        answers.extend(
            r.indices for r in session.run_batch(specs, method="cutting")
        )
        answers.append(session.skyline())
        return answers

    ref_session, _ = DatasetSession.load_snapshot(path)
    ref = tail(ref_session)
    for kernel_backend in KERNEL_BACKENDS:
        session, _ = DatasetSession.load_snapshot(path)
        session.configure_kernels(threads=2, backend=kernel_backend)
        got = tail(session)
        for a, b in zip(ref, got):
            assert np.array_equal(a, b)
