"""Unit tests of the shared-memory segment pool (:mod:`repro.perf.shm`).

The pool's contract: every segment it creates is tracked and unlinked on
reset — no leaked ``/dev/shm`` entries; freed segments are recycled under
the kernel memory cap; forked children forget the parent's segments
instead of unlinking them; and a crashed pool worker never strands a
segment (the dispatcher releases its leases and falls back inline).
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.perf import shm
from repro.perf.executor import (
    ShmKernel,
    kernel_context,
    run_tasks,
    shutdown_process_pools,
)


def _repro_shm_entries():
    """Names of this package's segments currently present in ``/dev/shm``."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux fallback
        return []
    return [f for f in os.listdir(root) if f.startswith(shm.SEGMENT_PREFIX)]


@pytest.fixture
def pool():
    p = shm.SharedArrayPool(memory_cap=1 << 20)
    yield p
    p.reset()


class TestSharedArrayPool:
    def test_acquire_release_recycles(self, pool):
        lease = pool.acquire(4096)
        name = lease.name
        pool.release(lease)
        again = pool.acquire(2048)  # best fit: the freed 4 KiB segment
        assert again.name == name
        assert pool.segments_created == 1
        assert pool.segments_recycled == 1
        pool.release(again)

    def test_reset_unlinks_everything(self, pool):
        before = set(_repro_shm_entries())
        leases = [pool.acquire(8192) for _ in range(3)]
        created = {lease.name for lease in leases}
        assert created <= set(_repro_shm_entries())
        for lease in leases:
            pool.release(lease)
        pool.reset()
        assert pool.total_bytes == 0
        after = set(_repro_shm_entries())
        assert not (created & after)
        assert after <= before

    def test_retention_trimmed_to_memory_cap(self):
        pool = shm.SharedArrayPool(memory_cap=10_000)
        try:
            leases = [pool.acquire(6_000) for _ in range(3)]
            for lease in leases:
                pool.release(lease)
            # 18 KB free exceeds the 10 KB cap: the trim unlinks segments
            # (largest first) until the retained bytes fit.
            assert pool.free_bytes <= 10_000
            assert pool.segments_unlinked >= 1
        finally:
            pool.reset()

    def test_loaned_segments_never_trimmed(self):
        pool = shm.SharedArrayPool(memory_cap=1)
        try:
            lease = pool.acquire(4096)
            # The cap only bounds *retained* free segments; a loaned one
            # stays alive however small the cap.
            assert pool.loaned_bytes == lease.capacity
            view = np.ndarray(4096, dtype=np.uint8, buffer=lease.shm.buf)
            view[:] = 7
            assert int(view.sum()) == 7 * 4096
            pool.release(lease)
            assert pool.free_bytes == 0  # trimmed on release under the cap
        finally:
            pool.reset()

    def test_forget_drops_registry_without_unlinking(self, pool):
        lease = pool.acquire(4096)
        name = lease.name
        pool.release(lease)
        pool.forget()
        # The segment is still in /dev/shm (a forked child must never
        # unlink its parent's live segments) ...
        assert name in _repro_shm_entries()
        assert pool.total_bytes == 0
        # ... so clean it up manually for this test.
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(name=name)
        seg.close()
        seg.unlink()

    def test_export_attach_round_trip(self, pool):
        array = np.arange(1000, dtype=np.float64).reshape(50, 20)
        lease, view, ref = shm.export_array(pool, array)
        try:
            assert np.array_equal(view, array)
            attached = shm.attach_array(ref)
            assert attached.shape == array.shape
            assert attached.dtype == array.dtype
            assert np.array_equal(attached, array)
            # Writes through the attached view land in the exported one —
            # they share the segment.
            attached[0, 0] = -1.0
            assert view[0, 0] == -1.0
        finally:
            shm.close_attachments()
            pool.release(lease)

    def test_noncontiguous_input_exported_contiguously(self, pool):
        base = np.arange(400, dtype=np.float64).reshape(20, 20)
        strided = base[::2, ::2]
        lease, view, ref = shm.export_array(pool, strided)
        try:
            assert view.flags["C_CONTIGUOUS"]
            assert np.array_equal(view, strided)
        finally:
            pool.release(lease)


class TestGlobalPoolLifecycle:
    def test_global_pool_reset_leaves_no_dev_shm_entries(self):
        pool = shm.global_pool()
        lease = pool.acquire(4096)
        pool.release(lease)
        shm.reset_global_pool()
        assert _repro_shm_entries() == []

    def test_reset_after_process_dispatch_leaves_no_entries(self):
        rng = np.random.default_rng(5)
        a = rng.random((600, 300))
        out = np.zeros_like(a)

        kernel = ShmKernel(
            _scale_block_shm,
            inputs={"a": a},
            outputs={"out": out},
            work_hint_bytes=1 << 21,
        )
        with kernel_context(threads=2, backend="process"):
            run_tasks(
                lambda start, stop: _scale_block(a, out, start, stop),
                [(0, 300), (300, 600)],
                shm_kernel=kernel,
            )
        assert np.array_equal(out, a * 2.0)
        shm.reset_global_pool()
        assert _repro_shm_entries() == []


def _scale_block(a, out, start, stop):
    out[start:stop] = a[start:stop] * 2.0


def _scale_block_shm(arrays, start, stop):
    _scale_block(arrays["a"], arrays["out"], start, stop)


def _crash_block_shm(arrays, start, stop):
    os._exit(13)  # hard worker death — not an exception, a lost process


class TestCrashRobustness:
    def test_worker_crash_falls_back_inline_and_leaks_nothing(self):
        rng = np.random.default_rng(6)
        a = rng.random((400, 300))
        out = np.zeros_like(a)
        kernel = ShmKernel(
            _crash_block_shm,
            inputs={"a": a},
            outputs={"out": out},
            work_hint_bytes=1 << 21,
        )
        with kernel_context(threads=2, backend="process"):
            with pytest.warns(RuntimeWarning, match="lost a worker"):
                run_tasks(
                    lambda start, stop: _scale_block(a, out, start, stop),
                    [(0, 200), (200, 400)],
                    shm_kernel=kernel,
                )
        # The inline rerun computed the exact answer ...
        assert np.array_equal(out, a * 2.0)
        # ... and the aborted dispatch stranded no segments: every lease
        # went back to the pool, so a reset clears /dev/shm completely.
        shm.reset_global_pool()
        assert _repro_shm_entries() == []
        # The next process dispatch rebuilds the pool and succeeds.
        out2 = np.zeros_like(a)
        kernel2 = ShmKernel(
            _scale_block_shm,
            inputs={"a": a},
            outputs={"out": out2},
            work_hint_bytes=1 << 21,
        )
        with kernel_context(threads=2, backend="process"):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                run_tasks(
                    lambda start, stop: _scale_block(a, out2, start, stop),
                    [(0, 200), (200, 400)],
                    shm_kernel=kernel2,
                )
        assert np.array_equal(out2, a * 2.0)
        shutdown_process_pools()
        shm.reset_global_pool()
        assert _repro_shm_entries() == []
