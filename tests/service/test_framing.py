"""Wire-protocol framing: round trips, torn frames, and damage handling.

The contract under test: recoverable damage (intact header, bad payload)
must never desynchronise the stream — the decoder reports it once and the
*next* frame decodes normally — while header damage (bad magic, unknown
version) permanently kills the decoder."""

from __future__ import annotations

import pickle
import struct

import numpy as np
import pytest

from repro.errors import FrameError
from repro.service import framing
from repro.service.framing import (
    FrameDecoder,
    RawFrameSplitter,
    encode_frame,
)


def _feed_all(decoder: FrameDecoder, blob: bytes):
    decoder.feed(blob)
    return list(decoder.frames())


class TestRoundTrip:
    def test_every_kind_round_trips(self):
        decoder = FrameDecoder()
        for kind in sorted(framing.KIND_NAMES):
            payload = {"kind": kind, "data": [1, 2.5, "x"]}
            frames = _feed_all(decoder, encode_frame(kind, payload))
            assert frames == [(kind, payload)]

    def test_numpy_payload_round_trips_exactly(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 4))
        decoder = FrameDecoder()
        ((kind, payload),) = _feed_all(
            decoder, encode_frame(framing.KIND_OK, {"points": points})
        )
        assert kind == framing.KIND_OK
        assert payload["points"].tobytes() == points.tobytes()

    def test_torn_frame_buffers_across_feeds(self):
        blob = encode_frame(framing.KIND_QUERY, {"id": 7})
        decoder = FrameDecoder()
        for offset in range(len(blob)):
            # Feeding one byte at a time: no frame until the last byte.
            assert decoder.next_frame() is None
            decoder.feed(blob[offset : offset + 1])
        assert decoder.next_frame() == (framing.KIND_QUERY, {"id": 7})

    def test_many_frames_in_one_feed(self):
        blob = b"".join(
            encode_frame(framing.KIND_PING, {"id": i}) for i in range(20)
        )
        decoder = FrameDecoder()
        frames = _feed_all(decoder, blob)
        assert [payload["id"] for _, payload in frames] == list(range(20))

    def test_unknown_kind_rejected_at_encode(self):
        with pytest.raises(FrameError):
            encode_frame(9999, {})


class TestRecoverableDamage:
    def test_payload_bitflip_is_recoverable_and_stream_continues(self):
        good = encode_frame(framing.KIND_OK, {"id": 1})
        bad = bytearray(encode_frame(framing.KIND_OK, {"id": 2}))
        bad[framing.FRAME_HEADER.size] ^= 0x10  # corrupt the payload
        tail = encode_frame(framing.KIND_OK, {"id": 3})
        decoder = FrameDecoder()
        decoder.feed(good + bytes(bad) + tail)
        assert decoder.next_frame() == (framing.KIND_OK, {"id": 1})
        with pytest.raises(FrameError) as excinfo:
            decoder.next_frame()
        assert excinfo.value.recoverable
        assert "CRC" in str(excinfo.value)
        # The stream re-synchronised: the next frame decodes normally.
        assert decoder.next_frame() == (framing.KIND_OK, {"id": 3})

    def test_undecodable_payload_is_recoverable(self):
        from zlib import crc32

        blob = b"\x80\x05 this is not a pickle"
        header = framing.FRAME_HEADER.pack(
            framing.FRAME_MAGIC, framing.PROTOCOL_VERSION,
            framing.KIND_OK, len(blob), crc32(blob),
        )
        decoder = FrameDecoder()
        decoder.feed(header + blob + encode_frame(framing.KIND_OK, {"id": 4}))
        with pytest.raises(FrameError) as excinfo:
            decoder.next_frame()
        assert excinfo.value.recoverable
        assert decoder.next_frame() == (framing.KIND_OK, {"id": 4})

    def test_unknown_kind_on_wire_is_recoverable(self):
        from zlib import crc32

        blob = pickle.dumps({"id": 9})
        header = framing.FRAME_HEADER.pack(
            framing.FRAME_MAGIC, framing.PROTOCOL_VERSION, 77,
            len(blob), crc32(blob),
        )
        decoder = FrameDecoder()
        decoder.feed(header + blob + encode_frame(framing.KIND_OK, {"id": 5}))
        with pytest.raises(FrameError) as excinfo:
            decoder.next_frame()
        assert excinfo.value.recoverable and excinfo.value.kind == 77
        assert decoder.next_frame() == (framing.KIND_OK, {"id": 5})

    def test_oversized_frame_skipped_without_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        big = encode_frame(framing.KIND_QUERY, {"blob": b"x" * 4096})
        decoder.feed(big[:100])  # header + part of the oversized payload
        with pytest.raises(FrameError) as excinfo:
            decoder.next_frame()
        assert excinfo.value.recoverable
        # The rest of the payload is discarded as it arrives, not stored.
        decoder.feed(big[100:])
        assert decoder.buffered_bytes == 0
        decoder.feed(encode_frame(framing.KIND_OK, {"id": 6}))
        assert decoder.next_frame() == (framing.KIND_OK, {"id": 6})


class TestUnrecoverableDamage:
    def test_bad_magic_kills_the_decoder(self):
        decoder = FrameDecoder()
        decoder.feed(b"JUNKJUNKJUNKJUNKJUNKJUNK")
        with pytest.raises(FrameError) as excinfo:
            decoder.next_frame()
        assert not excinfo.value.recoverable
        # Dead decoder refuses further use, loudly.
        with pytest.raises(FrameError):
            decoder.feed(encode_frame(framing.KIND_OK, {}))
        with pytest.raises(FrameError):
            decoder.next_frame()

    def test_unknown_version_kills_the_decoder(self):
        blob = pickle.dumps({})
        from zlib import crc32

        header = framing.FRAME_HEADER.pack(
            framing.FRAME_MAGIC, 999, framing.KIND_OK, len(blob), crc32(blob)
        )
        decoder = FrameDecoder()
        decoder.feed(header + blob)
        with pytest.raises(FrameError) as excinfo:
            decoder.next_frame()
        assert not excinfo.value.recoverable
        assert "version" in str(excinfo.value)


class TestRawFrameSplitter:
    def test_splits_on_frame_boundaries_verbatim(self):
        frames = [
            encode_frame(framing.KIND_QUERY, {"id": i}) for i in range(5)
        ]
        splitter = RawFrameSplitter()
        splitter.feed(b"".join(frames))
        out = []
        while True:
            chunk = splitter.next_chunk()
            if chunk is None:
                break
            out.append(chunk)
        assert out == frames

    def test_corruption_passes_through_untouched(self):
        # The whole point of the splitter: a bit-flipped frame must reach
        # the other side bit-flipped, not repaired by a re-encode.
        frame = bytearray(encode_frame(framing.KIND_OK, {"id": 1}))
        frame[framing.FRAME_HEADER.size + 1] ^= 0x08
        splitter = RawFrameSplitter()
        splitter.feed(bytes(frame))
        assert splitter.next_chunk() == bytes(frame)

    def test_torn_frame_waits_for_the_rest(self):
        frame = encode_frame(framing.KIND_OK, {"id": 2})
        splitter = RawFrameSplitter()
        splitter.feed(frame[:10])
        assert splitter.next_chunk() is None
        splitter.feed(frame[10:])
        assert splitter.next_chunk() == frame

    def test_unframeable_traffic_forwarded_opaquely(self):
        splitter = RawFrameSplitter()
        garbage = b"GET / HTTP/1.1\r\n" * 4
        splitter.feed(garbage)
        assert splitter.next_chunk() == garbage
        # Once opaque, everything is passed through as-is.
        more = encode_frame(framing.KIND_OK, {})
        splitter.feed(more)
        assert splitter.next_chunk() == more

    def test_flush_tail_returns_partial_frame(self):
        frame = encode_frame(framing.KIND_OK, {"id": 3})
        splitter = RawFrameSplitter()
        splitter.feed(frame[:-4])
        assert splitter.next_chunk() is None
        assert splitter.flush_tail() == frame[:-4]
