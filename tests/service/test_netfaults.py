"""Network fault injection: chaos-proxy damage, worker kills through the
network path, and whole-server SIGKILL + recovery — all gated on
byte-identical answers and zero lost acknowledged updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service.faults import FaultPlan
from repro.service.netclient import ClientConfig
from repro.service.netfaults import (
    NetFaultPlan,
    parse_net_plan,
    run_net_fault_injection,
)
from repro.service.supervisor import ServiceConfig

FAST = ServiceConfig(
    num_shards=2, backoff_base=0.01, backoff_cap=0.05, deadline=15.0,
    snapshot_every=4,
)

CLIENT_FAST = ClientConfig(
    connect_timeout=2.0, response_timeout=2.5, max_retries=25,
    backoff_base=0.02, backoff_cap=0.2, seed=1,
)

# Subprocess servers take seconds to restart after a SIGKILL: short
# response timeouts (drops must not stall the test) but a deep retry
# budget so in-flight requests ride through the recovery window.
CLIENT_KILLS = ClientConfig(
    connect_timeout=2.0, response_timeout=3.0, max_retries=40,
    backoff_base=0.05, backoff_cap=0.4, seed=1,
)


class TestPlanParsing:
    def test_parse_round_trip(self):
        plan = parse_net_plan(
            "drop_every=17,duplicate_every=13,bitflip_every=23,"
            "delay_every=9,delay=0.01,kill_conn_every=31,seed=3"
        )
        assert plan.drop_every == 17
        assert plan.duplicate_every == 13
        assert plan.bitflip_every == 23
        assert plan.delay == pytest.approx(0.01)
        assert plan.kill_conn_every == 31
        assert plan.seed == 3

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            parse_net_plan("explode_every=2")

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            NetFaultPlan(direction="sideways")
        with pytest.raises(ValueError):
            NetFaultPlan(drop_every=-1)
        with pytest.raises(ValueError):
            NetFaultPlan(delay=-0.5)


class TestHarnessValidation:
    def test_sigkill_needs_subprocess_server(self):
        with pytest.raises(ServiceError, match="subprocess"):
            run_net_fault_injection(kill_server_every=3, server="thread")

    def test_sigkill_needs_snapshot_dir(self):
        with pytest.raises(ServiceError, match="snapshot_dir"):
            run_net_fault_injection(
                kill_server_every=3, server="subprocess"
            )

    def test_external_needs_address(self):
        with pytest.raises(ServiceError, match="host"):
            run_net_fault_injection(server="external")

    def test_unknown_server_mode(self):
        with pytest.raises(ValueError):
            run_net_fault_injection(server="cloud")


class TestChaosProxyThreadServer:
    def test_clean_wire_matches_reference(self):
        report = run_net_fault_injection(
            dataset="INDE", n=300, dimensions=3, steps=10,
            update_fraction=0.4, config=FAST, client_config=CLIENT_FAST,
            seed=11, server="thread",
        )
        assert report.ok
        assert report.mismatches == 0
        assert report.drain_clean is True
        assert report.queries + report.update_batches > 0

    def test_byte_identical_under_drops_dups_and_bitflips(self):
        report = run_net_fault_injection(
            dataset="ANTI", n=400, dimensions=3, steps=16,
            update_fraction=0.35,
            net_plan=NetFaultPlan(
                drop_every=11, duplicate_every=7, bitflip_every=9, seed=2
            ),
            config=FAST, client_config=CLIENT_FAST, seed=4, server="thread",
        )
        assert report.ok, report.examples
        injected = report.proxy_stats
        assert injected["dropped"] + injected["bitflipped"] > 0
        # The client had to actually ride through damage.
        assert (
            report.client_stats["resends"] > 0
            or report.client_stats["frame_errors"] > 0
        )

    def test_byte_identical_under_connection_kills_and_truncation(self):
        report = run_net_fault_injection(
            dataset="ANTI", n=350, dimensions=3, steps=14,
            update_fraction=0.4,
            net_plan=NetFaultPlan(
                kill_conn_every=9, truncate_every=13, delay_every=5,
                delay=0.003, seed=6,
            ),
            config=FAST, client_config=CLIENT_FAST, seed=7, server="thread",
        )
        assert report.ok, report.examples
        assert (
            report.proxy_stats["conns_killed"]
            + report.proxy_stats["truncated"]
            > 0
        )
        assert report.client_stats["reconnects"] > 0

    def test_worker_kills_through_the_network_path(self, tmp_path):
        # Satellite: WAL torn-tail discipline exercised end to end — the
        # worker dies at before_wal (batch never logged) and at kill
        # (mid-batch, possibly half-written WAL tail); the supervisor
        # retries idempotently and the client-visible stream must stay
        # byte-identical throughout.
        for kill_mode in ("before_wal", "kill"):
            report = run_net_fault_injection(
                dataset="ANTI", n=300, dimensions=3, steps=12,
                update_fraction=0.5,
                plan=FaultPlan(kill_every=2, kill_mode=kill_mode, seed=13),
                config=FAST, client_config=CLIENT_FAST, seed=8,
                server="thread", snapshot_dir=str(tmp_path / kill_mode),
            )
            assert report.ok, (kill_mode, report.examples)
            service = report.server_stats["service"]
            assert service["worker_respawns"] > 0


class TestSubprocessServer:
    def test_sigkill_under_active_client_loses_nothing(self, tmp_path):
        # The acceptance gate of the tentpole: SIGKILL the whole server
        # process while requests are in flight (several times), restart it
        # with --recover on the same WAL directory, and require every
        # answer byte-identical with zero acked updates lost.
        report = run_net_fault_injection(
            dataset="ANTI", n=600, dimensions=3, steps=12,
            update_fraction=0.45,
            net_plan=NetFaultPlan(drop_every=15, duplicate_every=8, seed=3),
            config=FAST, client_config=CLIENT_KILLS, kill_server_every=4,
            seed=5, server="subprocess", snapshot_dir=str(tmp_path),
        )
        assert report.ok, report.examples
        assert report.server_restarts == 3
        assert report.mismatches == 0
        assert report.drain_clean is True  # SIGTERM drain exited 0
        assert report.client_stats["reconnects"] > 0

    def test_resend_after_ack_lost_in_server_kill(self, tmp_path):
        # Drop every server->client frame now and then so some update
        # acknowledgements vanish *and* kill the server: the resend path
        # must converge on exactly-once application.
        report = run_net_fault_injection(
            dataset="INDE", n=500, dimensions=3, steps=10,
            update_fraction=0.6,
            net_plan=NetFaultPlan(drop_every=6, direction="s2c", seed=9),
            config=FAST, client_config=CLIENT_KILLS, kill_server_every=5,
            seed=12, server="subprocess", snapshot_dir=str(tmp_path),
        )
        assert report.ok, report.examples
        assert report.server_restarts == 2
        assert report.client_stats["resends"] > 0
