"""TCP front end: parity over the wire, backpressure/shedding, deadlines,
idempotent resend, graceful drain, endpoint probes, and the
``REPRO_SERVICE_LISTEN`` environment knob."""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.errors import (
    DimensionMismatchError,
    ServerBusyError,
    ServiceError,
)
from repro.service import framing
from repro.service.netclient import ClientConfig, EclipseClient
from repro.service.netserver import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    NetServerConfig,
    resolve_listen,
    start_in_thread,
)
from repro.service.supervisor import EclipseService, ServiceConfig

FAST = ServiceConfig(
    num_shards=2, backoff_base=0.01, backoff_cap=0.05, snapshot_every=0
)

CLIENT_FAST = ClientConfig(
    connect_timeout=2.0, response_timeout=20.0, max_retries=3,
    backoff_base=0.01, backoff_cap=0.05,
)


@pytest.fixture()
def served():
    """A small service behind a thread-hosted TCP server."""
    data = generate_dataset("ANTI", 260, 3, seed=7)
    service = EclipseService(data, config=FAST)
    handle = start_in_thread(service, NetServerConfig(port=0))
    try:
        yield data, service, handle
    finally:
        handle.shutdown()
        service.close()


def _client(handle, **overrides):
    merged = {**CLIENT_FAST.__dict__, **overrides}
    return EclipseClient(handle.host, handle.port, ClientConfig(**merged))


def _specs(dimensions: int, count: int = 4, seed: int = 0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        low = float(rng.uniform(0.1, 1.0))
        out.append(
            RatioVector.uniform(
                low, low + float(rng.uniform(0.2, 2.5)), dimensions
            )
        )
    return out


class TestWireParity:
    def test_queries_byte_identical_to_reference(self, served):
        data, service, handle = served
        reference = DatasetSession(data)
        with _client(handle) as client:
            for spec in _specs(3):
                got = client.query(spec)
                want = reference.run(ratios=spec)
                np.testing.assert_array_equal(got.gids, want.indices)
                assert got.points.tobytes() == want.points.tobytes()

    def test_batch_matches_in_process_service(self, served):
        data, service, handle = served
        specs = _specs(3, count=6, seed=2)
        with _client(handle) as client:
            over_wire = client.query_batch(specs)
        in_process = service.query_batch(specs)
        for a, b in zip(over_wire, in_process):
            np.testing.assert_array_equal(a.gids, b.gids)
            assert a.points.tobytes() == b.points.tobytes()
            assert a.method == b.method

    def test_updates_apply_and_queries_see_them(self, served):
        data, service, handle = served
        rng = np.random.default_rng(3)
        inserts = data.min(axis=0) + rng.uniform(size=(6, 3)) * (
            data.max(axis=0) - data.min(axis=0)
        )
        with _client(handle) as client:
            ack = client.apply_updates(inserts=inserts)
            assert ack.insert_gids.size == 6
            spec = RatioVector.uniform(0.1, 3.0, 3)
            np.testing.assert_array_equal(
                client.query(spec).gids, service.query(spec).gids
            )

    def test_server_side_errors_rehydrate_to_original_class(self, served):
        _data, _service, handle = served
        with _client(handle) as client:
            with pytest.raises(DimensionMismatchError):
                client.query(RatioVector.uniform(0.5, 2.0, 7))


class TestIdempotentResend:
    def test_same_client_seq_is_not_reapplied(self, served):
        data, service, handle = served
        rng = np.random.default_rng(5)
        inserts = np.abs(rng.normal(size=(4, 3))) + 0.05
        with _client(handle) as client:
            ack = client.apply_updates(inserts=inserts)
            # Simulate a resend after a lost acknowledgement: rewind the
            # client sequence and send the identical batch again.
            client._next_client_seq -= 1
            again = client.apply_updates(inserts=inserts)
        assert again.seq == ack.seq
        np.testing.assert_array_equal(again.insert_gids, ack.insert_gids)
        assert service.stats.client_ack_replays == 1
        assert service.acked_seq == ack.seq  # applied exactly once

    def test_distinct_seqs_apply_separately(self, served):
        _data, service, handle = served
        rng = np.random.default_rng(6)
        with _client(handle) as client:
            a = client.apply_updates(
                inserts=np.abs(rng.normal(size=(2, 3))) + 0.05
            )
            b = client.apply_updates(
                inserts=np.abs(rng.normal(size=(2, 3))) + 0.05
            )
        assert b.seq == a.seq + 1
        assert service.stats.client_ack_replays == 0


class TestDeadlines:
    def test_per_request_deadline_overrides_config(self, served):
        _data, _service, handle = served
        with _client(handle, max_retries=0) as client:
            # An absurdly small budget must surface as the service's own
            # deadline failure, rehydrated through the wire — exactly what
            # the in-process API raises once its retry budget is spent.
            with pytest.raises(ServiceError, match="deadline"):
                client.query_batch(_specs(3), deadline=1e-9)
            # And a sane one still answers.
            assert client.query_batch(_specs(3), deadline=30.0)

    def test_invalid_deadline_rejected(self, served):
        _data, _service, handle = served
        with _client(handle, max_retries=0) as client:
            with pytest.raises(ServiceError):
                client.query_batch(_specs(3), deadline=-2.0)


class TestFrameRejection:
    def test_corrupt_frame_answered_in_band_connection_survives(self, served):
        _data, _service, handle = served
        with socket.create_connection(
            (handle.host, handle.port), timeout=10.0
        ) as sock:
            sock.settimeout(10.0)
            decoder = framing.FrameDecoder()
            bad = bytearray(
                framing.encode_frame(framing.KIND_HEALTH, {"id": 1})
            )
            bad[framing.FRAME_HEADER.size] ^= 0x40  # break the payload CRC
            sock.sendall(bytes(bad))
            sock.sendall(framing.encode_frame(framing.KIND_HEALTH, {"id": 2}))
            got = []
            while len(got) < 2:
                data = sock.recv(65536)
                assert data, "server closed a recoverable connection"
                decoder.feed(data)
                got.extend(decoder.frames())
        (k1, p1), (k2, p2) = got
        assert k1 == framing.KIND_ERROR and p1["id"] is None
        assert p1["recoverable"] is True
        assert k2 == framing.KIND_OK and p2["id"] == 2

    def test_bad_magic_closes_connection_not_listener(self, served):
        _data, _service, handle = served
        with socket.create_connection(
            (handle.host, handle.port), timeout=10.0
        ) as sock:
            sock.settimeout(10.0)
            sock.sendall(b"NOPE" + b"\x00" * 32)
            # The server answers with an unrecoverable ERROR and closes.
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
            decoder = framing.FrameDecoder()
            decoder.feed(b"".join(chunks))
            kind, payload = decoder.next_frame()
            assert kind == framing.KIND_ERROR
            assert payload["recoverable"] is False
        # The listener is fine: a fresh client works.
        with _client(handle) as client:
            assert client.health()["status"] == "ok"


class TestBackpressureAndShedding:
    def test_connection_cap_sheds_with_busy(self):
        data = generate_dataset("INDE", 120, 3, seed=1)
        service = EclipseService(data, config=FAST)
        handle = start_in_thread(
            service, NetServerConfig(port=0, max_connections=1)
        )
        try:
            with _client(handle) as first:
                assert first.health()["status"] == "ok"
                with _client(handle, max_retries=0) as second:
                    with pytest.raises(ServerBusyError):
                        second.health()
            # The slot freed: a new connection is admitted again.
            with _client(handle) as third:
                assert third.health()["status"] == "ok"
            assert handle.server.stats.connections_shed >= 1
        finally:
            handle.shutdown()
            service.close()

    def test_busy_retry_eventually_succeeds_after_slot_frees(self):
        data = generate_dataset("INDE", 120, 3, seed=2)
        service = EclipseService(data, config=FAST)
        handle = start_in_thread(
            service, NetServerConfig(port=0, max_connections=1)
        )
        try:
            import threading
            import time

            first = _client(handle)
            first.health()

            def release():
                time.sleep(0.3)
                first.close()

            threading.Thread(target=release).start()
            with _client(
                handle, max_retries=20, backoff_base=0.05, backoff_cap=0.2
            ) as second:
                assert second.health()["status"] == "ok"
                assert second.stats.busy_rejections >= 1
        finally:
            handle.shutdown()
            service.close()


class TestEndpoints:
    def test_health_ready_stats(self, served):
        _data, _service, handle = served
        with _client(handle) as client:
            health = client.health()
            assert health["status"] == "ok" and not health["draining"]
            assert health["uptime"] >= 0
            ready = client.ready()
            assert ready["ready"] is True and ready["shards"] == 2
            assert len(client.ping()) == 2
            stats = client.server_stats()
            assert stats["server"]["connections_accepted"] >= 1
            assert "queries" in stats["service"] or stats["service"]

    def test_force_snapshot_over_wire(self, tmp_path):
        data = generate_dataset("CORR", 140, 3, seed=4)
        service = EclipseService(
            data, config=FAST, snapshot_dir=str(tmp_path)
        )
        handle = start_in_thread(service, NetServerConfig(port=0))
        try:
            with _client(handle) as client:
                infos = client.force_snapshot()
            assert len(infos) == 2
        finally:
            handle.shutdown()
            service.close()


class TestGracefulDrain:
    def test_drain_refuses_new_connections_and_snapshots(self, tmp_path):
        data = generate_dataset("ANTI", 200, 3, seed=9)
        service = EclipseService(
            data, config=FAST, snapshot_dir=str(tmp_path)
        )
        handle = start_in_thread(service, NetServerConfig(port=0))
        with _client(handle) as client:
            client.apply_updates(
                inserts=np.abs(np.random.default_rng(1).normal(size=(3, 3)))
                + 0.05
            )
        handle.shutdown()
        # Drained: the port no longer accepts.
        with pytest.raises(OSError):
            socket.create_connection(
                (handle.host, handle.port), timeout=1.0
            ).close()
        # The acked update was snapshotted durably on the way out: a
        # recovering service sees it without replaying anything.
        service.close()
        with EclipseService(
            data, config=FAST, snapshot_dir=str(tmp_path), recover=True
        ) as recovered:
            assert recovered.acked_seq == 1

    def test_shutdown_is_idempotent(self, served):
        _data, _service, handle = served
        handle.shutdown()
        handle.shutdown()


class TestListenEnvKnob:
    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_LISTEN", raising=False)
        assert resolve_listen() == (DEFAULT_HOST, DEFAULT_PORT)

    def test_env_host_and_port(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_LISTEN", "10.1.2.3:9009")
        assert resolve_listen() == ("10.1.2.3", 9009)

    def test_env_port_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_LISTEN", ":9100")
        assert resolve_listen() == (DEFAULT_HOST, 9100)

    def test_env_host_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_LISTEN", "0.0.0.0")
        assert resolve_listen() == ("0.0.0.0", DEFAULT_PORT)

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_LISTEN", "10.1.2.3:9009")
        assert resolve_listen("127.0.0.1", 7001) == ("127.0.0.1", 7001)

    @pytest.mark.parametrize(
        "bad", ["127.0.0.1:notaport", ":", "host:99999", "  "]
    )
    def test_garbage_env_warns_and_falls_back(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SERVICE_LISTEN", bad)
        with pytest.warns(RuntimeWarning, match="REPRO_SERVICE_LISTEN"):
            resolved = resolve_listen()
        assert resolved == (DEFAULT_HOST, DEFAULT_PORT)


class TestClientConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ServiceError):
            ClientConfig(response_timeout=0)
        with pytest.raises(ServiceError):
            ClientConfig(max_retries=-1)
        with pytest.raises(ServiceError):
            ClientConfig(backoff_base=-0.1)

    def test_closed_client_refuses_requests(self, served):
        _data, _service, handle = served
        client = _client(handle)
        client.health()
        client.close()
        with pytest.raises(ServiceError):
            client.health()
