"""Crash-recovery fuzzing: workers die at every protocol instant, snapshots
rot on disk, acknowledgements get lost — answers must never change."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.service import EclipseService, ServiceConfig
from repro.service.faults import (
    FaultInjector,
    FaultPlan,
    corrupt_file,
    run_fault_injection,
)
from repro.service.wal import WriteAheadLog
from repro.service.worker import recover_shard

FAST = ServiceConfig(
    num_shards=2, backoff_base=0.01, backoff_cap=0.05, snapshot_every=3
)


class TestKillEveryKthBatch:
    """The ISSUE's fuzz contract: kill a worker after every k-th acknowledged
    update batch, at each interesting instant of the WAL-apply-ack protocol,
    and demand byte-identical answers throughout."""

    @pytest.mark.parametrize(
        "kill_mode", ["kill", "before_wal", "after_wal", "after_apply"]
    )
    def test_byte_identical_under_kills(self, kill_mode):
        plan = FaultPlan(kill_every=2, kill_mode=kill_mode, seed=13)
        report = run_fault_injection(
            dataset="ANTI",
            n=400,
            dimensions=3,
            steps=16,
            update_fraction=0.5,
            batch=3,
            update_size=12,
            plan=plan,
            config=FAST,
            seed=21,
        )
        assert report.ok, report.examples
        assert report.injector["kills_injected"] >= 2
        assert report.service_stats["worker_respawns"] >= 2
        assert report.service_stats["retries"] >= 1

    def test_kill_every_batch_is_survivable(self):
        plan = FaultPlan(kill_every=1, kill_mode="after_wal", seed=5)
        report = run_fault_injection(
            dataset="INDE",
            n=300,
            dimensions=3,
            steps=12,
            update_fraction=0.6,
            batch=2,
            update_size=8,
            plan=plan,
            config=FAST,
            seed=9,
        )
        assert report.ok, report.examples
        assert report.injector["kills_injected"] == report.update_batches


class TestDuplicateDelivery:
    def test_dropped_acks_pin_idempotent_application(self):
        # Lost acknowledgements force redelivery of already-applied update
        # batches; the sequence-number dedup must absorb every duplicate.
        plan = FaultPlan(drop_response_rate=0.3, seed=3)
        config = ServiceConfig(
            num_shards=2, max_retries=8, backoff_base=0.005, backoff_cap=0.02
        )
        report = run_fault_injection(
            dataset="ANTI",
            n=300,
            dimensions=3,
            steps=14,
            update_fraction=0.5,
            batch=2,
            update_size=10,
            plan=plan,
            config=config,
            seed=17,
        )
        assert report.ok, report.examples
        assert report.service_stats["dropped_responses"] >= 1
        assert report.injector["drops_injected"] >= 1

    def test_redelivered_seq_not_reapplied(self):
        data = generate_dataset("CORR", 120, 2, seed=0)
        reference = DatasetSession(data)
        ref_gids = np.arange(data.shape[0], dtype=np.intp)
        # Drop every response once: each update is delivered at least twice.
        plan = FaultPlan(drop_response_rate=0.5, seed=11)
        config = ServiceConfig(
            num_shards=2, max_retries=10, backoff_base=0.005, backoff_cap=0.02
        )
        with EclipseService(
            data, config=config, injector=FaultInjector(plan)
        ) as service:
            inserts = np.array([[0.3, 0.8], [0.7, 0.2]])
            for round_number in range(5):
                ack = service.apply_updates(
                    inserts=inserts, delete_gids=ref_gids[:1]
                )
                reference.apply_updates(inserts=inserts, deletes=np.array([0]))
                ref_gids = np.concatenate([ref_gids[1:], ack.insert_gids])
                assert ack.seq == round_number + 1
            # A double-applied batch would change the row count.
            health = service.ping()
            assert sum(h["num_points"] for h in health) == reference.num_points
            spec = RatioVector.uniform(0.25, 2.0, 2)
            want = reference.run(ratios=spec)
            got = service.query(spec)
            np.testing.assert_array_equal(ref_gids[want.indices], got.gids)
            assert want.points.tobytes() == got.points.tobytes()


class TestSnapshotCorruption:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_snapshot_demotes_to_cold_rebuild(self, tmp_path, mode):
        data = generate_dataset("ANTI", 200, 3, seed=6)
        reference = DatasetSession(data)
        ref_gids = np.arange(data.shape[0], dtype=np.intp)
        config = ServiceConfig(
            num_shards=2, backoff_base=0.01, snapshot_every=0
        )
        with EclipseService(
            data, config=config, snapshot_dir=str(tmp_path)
        ) as service:
            inserts = np.full((4, 3), 0.4)
            ack = service.apply_updates(inserts=inserts, delete_gids=ref_gids[:2])
            reference.apply_updates(inserts=inserts, deletes=np.arange(2))
            ref_gids = np.concatenate([ref_gids[2:], ack.insert_gids])
            service.force_snapshot()
            for shard in range(2):
                corrupt_file(
                    str(tmp_path / f"shard-{shard}.snapshot"), mode, seed=shard
                )
                service._handles[shard].process.kill()
                service._handles[shard].process.join(timeout=5.0)
            spec = RatioVector.uniform(0.3, 2.0, 3)
            want = reference.run(ratios=spec)
            got = service.query(spec)
            # Detected (counted, logged), demoted to cold, still exact.
            assert service.stats.snapshot_failures == 2
            assert service.stats.cold_rebuilds == 2
            assert service.stats.warm_restarts == 0
            np.testing.assert_array_equal(ref_gids[want.indices], got.gids)
            assert want.points.tobytes() == got.points.tobytes()

    def test_corruption_under_fuzz_plan(self):
        plan = FaultPlan(
            kill_every=2,
            kill_mode="kill",
            corrupt_snapshot="bitflip",
            corrupt_every=1,
            seed=29,
        )
        report = run_fault_injection(
            dataset="ANTI",
            n=300,
            dimensions=3,
            steps=14,
            update_fraction=0.5,
            batch=2,
            update_size=10,
            plan=plan,
            config=FAST,
            seed=31,
        )
        assert report.ok, report.examples
        if report.injector["corruptions_injected"]:
            assert report.service_stats["snapshot_failures"] >= 1
            assert report.service_stats["cold_rebuilds"] >= 1


class TestWarmRestart:
    def test_snapshot_plus_wal_tail_recovers_warm(self, tmp_path):
        data = generate_dataset("INDE", 200, 3, seed=12)
        reference = DatasetSession(data)
        ref_gids = np.arange(data.shape[0], dtype=np.intp)
        config = ServiceConfig(
            num_shards=2, backoff_base=0.01, snapshot_every=0
        )
        with EclipseService(
            data, config=config, snapshot_dir=str(tmp_path)
        ) as service:
            rng = np.random.default_rng(1)
            for _ in range(2):
                inserts = rng.uniform(0.1, 0.9, size=(4, 3))
                positions = np.sort(rng.choice(ref_gids.size, 2, replace=False))
                ack = service.apply_updates(
                    inserts=inserts, delete_gids=ref_gids[positions]
                )
                reference.apply_updates(inserts=inserts, deletes=positions)
                ref_gids = np.concatenate(
                    [np.delete(ref_gids, positions), ack.insert_gids]
                )
            service.force_snapshot()
            # One more acknowledged batch *after* the snapshot: the warm
            # restart must replay it from the WAL tail.
            inserts = rng.uniform(0.1, 0.9, size=(4, 3))
            ack = service.apply_updates(inserts=inserts)
            reference.apply_updates(inserts=inserts)
            ref_gids = np.concatenate([ref_gids, ack.insert_gids])
            for handle in service._handles:
                handle.process.kill()
                handle.process.join(timeout=5.0)
            spec = RatioVector.uniform(0.35, 1.9, 3)
            want = reference.run(ratios=spec)
            got = service.query(spec)
            assert service.stats.warm_restarts == 2
            assert service.stats.cold_rebuilds == 0
            assert service.stats.wal_records_replayed >= 2
            np.testing.assert_array_equal(ref_gids[want.indices], got.gids)
            assert want.points.tobytes() == got.points.tobytes()


class TestRecoverShard:
    def test_fresh_start_without_artifacts(self, tmp_path):
        data = generate_dataset("CORR", 80, 2, seed=0)
        wal = WriteAheadLog(str(tmp_path / "shard.wal"))
        state, info = recover_shard(
            data, np.arange(80), str(tmp_path / "none.snapshot"), wal
        )
        assert info["mode"] == "fresh"
        assert info["replayed"] == 0
        assert state.last_seq == 0
        assert state.session.num_points == 80

    def test_cold_rebuild_replays_full_wal(self, tmp_path):
        data = generate_dataset("CORR", 80, 2, seed=0)
        wal = WriteAheadLog(str(tmp_path / "shard.wal"))
        wal.append(
            {
                "seq": 1,
                "insert_points": np.array([[0.5, 0.5]]),
                "insert_gids": np.array([80], dtype=np.intp),
                "delete_gids": np.array([0], dtype=np.intp),
            }
        )
        wal.close()
        state, info = recover_shard(
            data, np.arange(80), str(tmp_path / "none.snapshot"), wal
        )
        assert info["mode"] == "cold"
        assert info["replayed"] == 1
        assert state.last_seq == 1
        assert state.session.num_points == 80  # one delete, one insert
        assert 80 in state.gids and 0 not in state.gids

    def test_warm_skips_already_snapshotted_records(self, tmp_path):
        data = generate_dataset("CORR", 80, 2, seed=0)
        record = {
            "seq": 1,
            "insert_points": np.array([[0.5, 0.5]]),
            "insert_gids": np.array([80], dtype=np.intp),
            "delete_gids": np.empty(0, dtype=np.intp),
        }
        wal = WriteAheadLog(str(tmp_path / "shard.wal"))
        wal.append(record)
        wal.close()
        session = DatasetSession(data)
        session.apply_updates(inserts=record["insert_points"])
        snapshot_path = str(tmp_path / "shard.snapshot")
        session.save_snapshot(
            snapshot_path,
            extra={"gids": np.arange(81, dtype=np.intp), "last_seq": 1},
        )
        state, info = recover_shard(data, np.arange(80), snapshot_path, wal)
        assert info["mode"] == "warm"
        assert info["replayed"] == 0  # seq 1 was already in the snapshot
        assert state.session.num_points == 81

    def test_service_index_budget_wins_over_snapshot(self, tmp_path):
        data = generate_dataset("CORR", 80, 2, seed=0)
        wal = WriteAheadLog(str(tmp_path / "shard.wal"))
        wal.close()
        session = DatasetSession(data, index_budget_bytes=512 * 1024 * 1024)
        snapshot_path = str(tmp_path / "shard.snapshot")
        session.save_snapshot(
            snapshot_path,
            extra={"gids": np.arange(80, dtype=np.intp), "last_seq": 0},
        )
        kwargs = {"index_budget_bytes": 2 * 1024 * 1024}
        state, info = recover_shard(
            data, np.arange(80), snapshot_path, wal, session_kwargs=kwargs
        )
        assert info["mode"] == "warm"
        # The snapshot carried a 512 MB budget; the service's 2 MB wins.
        assert state.session.index_budget_bytes == 2 * 1024 * 1024
        # Cold path gets the same kwargs straight into the constructor.
        cold, _ = recover_shard(
            data,
            np.arange(80),
            str(tmp_path / "missing.snapshot"),
            wal,
            session_kwargs=kwargs,
        )
        assert cold.session.index_budget_bytes == 2 * 1024 * 1024
