"""EclipseService behaviour: exact sharded answers, batching, degradation,
validation, and basic fault absorption."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.errors import (
    DimensionMismatchError,
    InvalidDatasetError,
    ServiceError,
)
from repro.service import EclipseService, ServiceConfig
from repro.service.supervisor import _QueryWork

FAST = ServiceConfig(
    num_shards=2, backoff_base=0.01, backoff_cap=0.05, snapshot_every=4
)


def _specs(dimensions: int, count: int = 5, seed: int = 0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        low = float(rng.uniform(0.1, 1.0))
        out.append(
            RatioVector.uniform(low, low + float(rng.uniform(0.2, 2.5)), dimensions)
        )
    return out


def _assert_matches_reference(service, reference, ref_gids, specs):
    """Every service answer must be byte-identical to the reference's."""
    results = service.query_batch(specs)
    for spec, got in zip(specs, results):
        want = reference.run(ratios=spec)
        np.testing.assert_array_equal(ref_gids[want.indices], got.gids)
        assert want.points.tobytes() == got.points.tobytes()


class TestExactShardedAnswers:
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_queries_match_single_process(self, num_shards):
        data = generate_dataset("ANTI", 240, 3, seed=7)
        config = ServiceConfig(num_shards=num_shards, backoff_base=0.01)
        reference = DatasetSession(data)
        ref_gids = np.arange(data.shape[0], dtype=np.intp)
        with EclipseService(data, config=config) as service:
            _assert_matches_reference(service, reference, ref_gids, _specs(3))
            assert service.stats.queries == 5

    def test_updates_then_queries_match_single_process(self):
        data = generate_dataset("INDE", 200, 3, seed=3)
        reference = DatasetSession(data)
        ref_gids = np.arange(data.shape[0], dtype=np.intp)
        rng = np.random.default_rng(42)
        with EclipseService(data, config=FAST) as service:
            for round_number in range(4):
                inserts = rng.uniform(0.1, 0.9, size=(6, 3))
                positions = np.sort(
                    rng.choice(ref_gids.size, size=4, replace=False)
                )
                ack = service.apply_updates(
                    inserts=inserts, delete_gids=ref_gids[positions]
                )
                assert ack.seq == round_number + 1
                assert ack.rows_deleted == 4
                reference.apply_updates(inserts=inserts, deletes=positions)
                ref_gids = np.concatenate(
                    [np.delete(ref_gids, positions), ack.insert_gids]
                )
                _assert_matches_reference(
                    service, reference, ref_gids, _specs(3, count=3, seed=round_number)
                )
            assert service.acked_seq == 4
            assert service.stats.rows_inserted == 24
            assert service.stats.rows_deleted == 16

    def test_insert_only_and_delete_only_batches(self):
        data = generate_dataset("CORR", 120, 2, seed=1)
        reference = DatasetSession(data)
        ref_gids = np.arange(data.shape[0], dtype=np.intp)
        with EclipseService(data, config=FAST) as service:
            inserts = np.array([[0.2, 0.9], [0.8, 0.1], [0.5, 0.5]])
            ack = service.apply_updates(inserts=inserts)
            reference.apply_updates(inserts=inserts)
            ref_gids = np.concatenate([ref_gids, ack.insert_gids])
            ack = service.apply_updates(delete_gids=ref_gids[:5])
            reference.apply_updates(deletes=np.arange(5))
            ref_gids = ref_gids[5:]
            assert ack.rows_deleted == 5
            _assert_matches_reference(
                service, reference, ref_gids, _specs(2, count=3)
            )


class TestAdmissionBatching:
    def test_window_coalesces_and_counts(self):
        data = generate_dataset("ANTI", 200, 3, seed=5)
        with EclipseService(data, config=FAST) as service:
            # Drive the window path directly (deterministic, no queue races).
            window = [_QueryWork(spec=spec) for spec in _specs(3, count=4)]
            service._do_query_window(window)
            assert service.stats.query_windows == 1
            assert service.stats.coalesced_queries == 4
            assert service.stats.max_window == 4
            reference = DatasetSession(data)
            for work in window:
                assert work.done.is_set()
                want = reference.run(ratios=work.spec)
                np.testing.assert_array_equal(want.indices, work.result.gids)

    def test_concurrent_batch_ends_to_end(self):
        data = generate_dataset("INDE", 200, 3, seed=9)
        reference = DatasetSession(data)
        with EclipseService(data, config=FAST) as service:
            specs = _specs(3, count=8, seed=2)
            results = service.query_batch(specs)
            assert service.stats.queries == 8
            assert service.stats.query_windows <= 8
            for spec, got in zip(specs, results):
                want = reference.run(ratios=spec)
                np.testing.assert_array_equal(want.indices, got.gids)


class TestGracefulDegradation:
    def test_overload_sheds_window_to_transform(self):
        data = generate_dataset("ANTI", 200, 3, seed=6)
        config = ServiceConfig(
            num_shards=2, overload_threshold=2, backoff_base=0.01
        )
        reference = DatasetSession(data)
        with EclipseService(data, config=config) as service:
            window = [_QueryWork(spec=spec) for spec in _specs(3, count=5)]
            service._do_query_window(window)
            assert service.stats.overload_sheds == 1
            assert service.stats.degraded_queries == 5
            for work in window:
                assert work.result.degraded
                assert work.result.method == "transform"
                want = reference.run(ratios=work.spec)
                np.testing.assert_array_equal(want.indices, work.result.gids)

    def test_small_windows_not_shed(self):
        data = generate_dataset("ANTI", 150, 3, seed=6)
        config = ServiceConfig(
            num_shards=2, overload_threshold=4, backoff_base=0.01
        )
        with EclipseService(data, config=config) as service:
            result = service.query(RatioVector.uniform(0.3, 2.0, 3))
            assert not result.degraded
            assert service.stats.overload_sheds == 0


class TestCrashAbsorption:
    def test_killed_worker_is_respawned_and_query_retried(self):
        data = generate_dataset("ANTI", 220, 3, seed=8)
        reference = DatasetSession(data)
        with EclipseService(data, config=FAST) as service:
            service._handles[0].process.kill()
            service._handles[0].process.join(timeout=5.0)
            spec = RatioVector.uniform(0.25, 2.0, 3)
            got = service.query(spec)
            want = reference.run(ratios=spec)
            np.testing.assert_array_equal(want.indices, got.gids)
            assert want.points.tobytes() == got.points.tobytes()
            assert service.stats.retries >= 1
            assert service.stats.worker_respawns >= 1

    def test_killed_worker_recovers_acknowledged_updates(self):
        data = generate_dataset("INDE", 180, 3, seed=4)
        reference = DatasetSession(data)
        ref_gids = np.arange(data.shape[0], dtype=np.intp)
        with EclipseService(data, config=FAST) as service:
            inserts = np.full((4, 3), 0.25)
            ack = service.apply_updates(inserts=inserts, delete_gids=ref_gids[:3])
            reference.apply_updates(inserts=inserts, deletes=np.arange(3))
            ref_gids = np.concatenate([ref_gids[3:], ack.insert_gids])
            for handle in service._handles:
                handle.process.kill()
                handle.process.join(timeout=5.0)
            _assert_matches_reference(
                service, reference, ref_gids, _specs(3, count=3)
            )
            assert service.stats.worker_respawns >= 2

    def test_deadline_exceeded_surfaces_after_bounded_retries(self):
        data = generate_dataset("ANTI", 150, 3, seed=2)
        config = ServiceConfig(
            num_shards=1, max_retries=1, backoff_base=0.001, backoff_cap=0.002
        )
        with EclipseService(data, config=config) as service:
            object.__setattr__(service.config, "deadline", 1e-7)
            with pytest.raises(ServiceError):
                service.query(RatioVector.uniform(0.3, 2.0, 3))
            assert service.stats.deadline_timeouts >= 1
            object.__setattr__(service.config, "deadline", 30.0)


class TestValidationAndLifecycle:
    def test_non_finite_inserts_rejected(self):
        data = generate_dataset("CORR", 80, 2, seed=0)
        with EclipseService(data, config=FAST) as service:
            before = service.acked_seq
            with pytest.raises(InvalidDatasetError):
                service.apply_updates(inserts=np.array([[0.5, np.nan]]))
            with pytest.raises(InvalidDatasetError):
                service.apply_updates(inserts=np.array([[np.inf, 0.5]]))
            # Nothing was enqueued: the service still answers and the
            # sequence number did not advance.
            assert service.acked_seq == before
            assert len(service.query(RatioVector.uniform(0.25, 2.0, 2))) > 0

    def test_dimension_mismatch_rejected(self):
        data = generate_dataset("CORR", 80, 2, seed=0)
        with EclipseService(data, config=FAST) as service:
            with pytest.raises(DimensionMismatchError):
                service.apply_updates(inserts=np.ones((2, 3)))
            with pytest.raises(DimensionMismatchError):
                service.query(RatioVector.uniform(0.25, 2.0, 4))
            with pytest.raises(ServiceError):
                service.apply_updates(delete_gids=np.ones((2, 2), dtype=int))

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ServiceError):
            EclipseService(np.ones((4, 2)), config=ServiceConfig(num_shards=0))

    def test_ping_and_force_snapshot(self, tmp_path):
        data = generate_dataset("INDE", 100, 2, seed=1)
        with EclipseService(
            data, config=FAST, snapshot_dir=str(tmp_path)
        ) as service:
            health = service.ping()
            assert len(health) == 2
            assert {h["shard"] for h in health} == {0, 1}
            assert all(h["last_seq"] == 0 for h in health)
            reports = service.force_snapshot()
            assert service.stats.snapshots_taken == 2
            for shard, report in enumerate(reports):
                assert report["bytes"] > 0
                assert (tmp_path / f"shard-{shard}.snapshot").exists()

    def test_close_is_idempotent_and_final(self):
        data = generate_dataset("CORR", 60, 2, seed=0)
        service = EclipseService(data, config=FAST)
        assert len(service.query(RatioVector.uniform(0.25, 2.0, 2))) > 0
        service.close()
        service.close()
        with pytest.raises(ServiceError):
            service.query(RatioVector.uniform(0.25, 2.0, 2))


class TestProcessBackendShards:
    """PR 9 regression: the process kernel backend composes with the service.

    Shard workers are themselves pool processes; their post-fork hook must
    drop the parent's executor pools and *forget* (never unlink) the
    parent's shared segments, and nested kernel dispatch inside a shard
    resolves to the exact serial path — so a ``kernel_backend="process"``
    service answers byte-identically and leaks nothing into ``/dev/shm``.
    """

    def test_process_backend_shards_match_single_process(self):
        import os as _os

        from repro.perf import shm

        data = generate_dataset("ANTI", 240, 3, seed=17)
        config = ServiceConfig(
            num_shards=2,
            backoff_base=0.01,
            backoff_cap=0.05,
            snapshot_every=4,
            kernel_backend="process",
            threads=2,
        )
        reference = DatasetSession(data)
        ref_gids = np.arange(data.shape[0], dtype=np.intp)
        with EclipseService(data, config=config) as service:
            _assert_matches_reference(service, reference, ref_gids, _specs(3))
            inserts = np.random.default_rng(18).uniform(0.1, 0.9, size=(6, 3))
            ack = service.apply_updates(inserts=inserts, delete_gids=ref_gids[:4])
            reference.apply_updates(inserts=inserts, deletes=np.arange(4))
            ref_gids = np.concatenate([ref_gids[4:], ack.insert_gids])
            _assert_matches_reference(
                service, reference, ref_gids, _specs(3, count=3, seed=19)
            )
        shm.reset_global_pool()
        leftovers = [
            f
            for f in _os.listdir("/dev/shm")
            if f.startswith(shm.SEGMENT_PREFIX)
        ]
        assert leftovers == []

    def test_shard_fork_resets_executor_pools_and_segment_registry(self):
        # The supervisor forks shard workers *after* the dispatching process
        # may have touched pools and shared segments.  Simulate that order
        # directly: warm the parent's pool registry, then verify the
        # post-fork hook leaves a child with empty caches and a segment
        # registry that forgets (but does not unlink) the parent's segment.
        import os as _os

        from repro.perf import executor, shm

        pool = shm.global_pool()
        lease = pool.acquire(4096)
        name = lease.name
        pool.release(lease)
        assert pool.total_bytes > 0
        pid = _os.fork()
        if pid == 0:  # child
            status = 0
            try:
                child_pool = shm.global_pool()
                assert child_pool.total_bytes == 0
                assert executor._POOLS == {}
                assert executor._PROCESS_POOLS == {}
                assert name in _os.listdir("/dev/shm")
            except BaseException:
                status = 1
            finally:
                _os._exit(status)
        _, exit_status = _os.waitpid(pid, 0)
        assert _os.waitstatus_to_exitcode(exit_status) == 0
        # The parent's registry survived the fork untouched.
        assert name in pool.segment_names()
        shm.reset_global_pool()
        assert name not in _os.listdir("/dev/shm")

    def test_fault_injection_with_process_backend(self):
        from repro.service.faults import FaultPlan, run_fault_injection

        config = ServiceConfig(
            num_shards=2,
            backoff_base=0.01,
            backoff_cap=0.05,
            snapshot_every=4,
            kernel_backend="process",
        )
        plan = FaultPlan(kill_every=6, drop_response_rate=0.1, seed=3)
        report = run_fault_injection(
            n=400,
            steps=16,
            update_fraction=0.3,
            batch=3,
            update_size=8,
            plan=plan,
            config=config,
            seed=3,
            verify=True,
        )
        assert report.ok
        assert report.mismatches == 0
        assert report.queries > 0 and report.update_batches > 0


class TestCloseRobustness:
    """``close()`` must be safe to call twice, after worker death, after a
    dispatcher crash, and on a service whose constructor failed."""

    def test_double_close_is_idempotent(self):
        data = generate_dataset("INDE", 120, 3, seed=1)
        service = EclipseService(data, config=FAST)
        service.close()
        service.close()

    def test_use_after_close_raises_cleanly(self):
        data = generate_dataset("INDE", 120, 3, seed=2)
        service = EclipseService(data, config=FAST)
        service.close()
        with pytest.raises(ServiceError):
            service.query(RatioVector.uniform(0.5, 2.0, 3))
        with pytest.raises(ServiceError):
            service.apply_updates(inserts=np.ones((1, 3)))

    def test_close_after_all_workers_killed(self):
        data = generate_dataset("INDE", 150, 3, seed=3)
        service = EclipseService(data, config=FAST)
        for handle in service._handles:
            handle.kill()
        service.close()
        service.close()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_close_after_dispatcher_crash(self):
        import time

        data = generate_dataset("INDE", 150, 3, seed=4)
        service = EclipseService(data, config=FAST)
        # A foreign object in the work queue crashes the dispatcher
        # thread (its error handler cannot mark it done).  close() must
        # still tear everything down without hanging or raising.
        service._queue.put(object())
        deadline = time.monotonic() + 5.0
        while service._dispatcher.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not service._dispatcher.is_alive()
        service.close()
        service.close()

    def test_constructor_failure_leaves_no_live_workers(self, monkeypatch):
        data = generate_dataset("INDE", 120, 3, seed=5)
        original = EclipseService._spawn
        calls = {"n": 0}

        def flaky(self, shard, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise ServiceError("injected spawn failure")
            return original(self, shard, **kwargs)

        monkeypatch.setattr(EclipseService, "_spawn", flaky)
        with pytest.raises(ServiceError, match="injected spawn failure"):
            EclipseService(data, config=FAST)

    def test_recover_requires_snapshot_dir(self):
        data = generate_dataset("INDE", 120, 3, seed=6)
        with pytest.raises(ServiceError, match="snapshot"):
            EclipseService(data, config=FAST, recover=True)


class TestSupervisorRecovery:
    """``recover=True`` rebuilds supervisor state (sequence counter,
    global-id allocator, client-acknowledgement cache) from the WALs of a
    dead process and repairs lagging shards."""

    def test_recover_restores_seq_gids_and_acks(self, tmp_path):
        data = generate_dataset("ANTI", 200, 3, seed=7)
        rng = np.random.default_rng(8)
        inserts = np.abs(rng.normal(size=(5, 3))) + 0.05
        spec = RatioVector.uniform(0.2, 2.2, 3)
        with EclipseService(
            data, config=FAST, snapshot_dir=str(tmp_path)
        ) as service:
            ack = service.apply_updates(
                inserts=inserts, client_key=("c1", 1)
            )
            before = service.query(spec)
        # A brand-new process over the same WAL directory: recovery must
        # restore the sequence, keep answers identical, dedup the client
        # resend, and hand out fresh (non-colliding) global ids.
        with EclipseService(
            data, config=FAST, snapshot_dir=str(tmp_path), recover=True
        ) as recovered:
            assert recovered.acked_seq == ack.seq
            assert recovered.stats.supervisor_recoveries == 1
            after = recovered.query(spec)
            np.testing.assert_array_equal(before.gids, after.gids)
            assert before.points.tobytes() == after.points.tobytes()
            replay = recovered.apply_updates(
                inserts=inserts, client_key=("c1", 1)
            )
            assert replay.seq == ack.seq
            np.testing.assert_array_equal(
                replay.insert_gids, ack.insert_gids
            )
            assert recovered.stats.client_ack_replays == 1
            fresh = recovered.apply_updates(
                inserts=inserts, client_key=("c1", 2)
            )
            assert fresh.seq == ack.seq + 1
            assert not np.intersect1d(
                fresh.insert_gids, ack.insert_gids
            ).size

    def test_recover_on_empty_dir_is_a_fresh_start(self, tmp_path):
        data = generate_dataset("INDE", 150, 3, seed=9)
        with EclipseService(
            data, config=FAST, snapshot_dir=str(tmp_path), recover=True
        ) as service:
            assert service.acked_seq == 0
            assert service.query(RatioVector.uniform(0.4, 2.0, 3)).gids.size

    def test_deadline_argument_validated(self):
        data = generate_dataset("INDE", 120, 3, seed=10)
        with EclipseService(data, config=FAST) as service:
            with pytest.raises(ServiceError):
                service.query(RatioVector.uniform(0.4, 2.0, 3), deadline=0)
            with pytest.raises(ServiceError):
                service.query_batch(
                    [RatioVector.uniform(0.4, 2.0, 3)], deadline=-1.0
                )
            assert service.query(
                RatioVector.uniform(0.4, 2.0, 3), deadline=30.0
            ).gids is not None
