"""Snapshot container integrity: checksums, versioning, session round-trips."""

from __future__ import annotations

import pickle
import struct

import numpy as np
import pytest

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.errors import SnapshotError
from repro.perf.arena import GrowableArena
from repro.service.faults import corrupt_file
from repro.service.snapshot import MAGIC, VERSION, read_payload, write_payload


@pytest.fixture
def payload():
    return {
        "kind": "test-payload",
        "array": np.arange(12, dtype=float).reshape(4, 3),
        "nested": {"seq": 7, "gids": np.array([1, 5, 9], dtype=np.intp)},
    }


class TestPayloadContainer:
    def test_round_trip(self, tmp_path, payload):
        path = str(tmp_path / "state.snapshot")
        size = write_payload(path, payload)
        assert size > 52  # header + payload
        got = read_payload(path)
        assert got["kind"] == "test-payload"
        np.testing.assert_array_equal(got["array"], payload["array"])
        assert got["nested"]["seq"] == 7

    def test_write_is_atomic(self, tmp_path, payload):
        path = str(tmp_path / "state.snapshot")
        write_payload(path, payload)
        before = open(path, "rb").read()
        # A second write replaces the file in one step; no .tmp residue.
        write_payload(path, payload)
        assert open(path, "rb").read() == before
        assert list(tmp_path.iterdir()) == [tmp_path / "state.snapshot"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_payload(str(tmp_path / "nope.snapshot"))

    def test_truncated_file_detected(self, tmp_path, payload):
        path = str(tmp_path / "state.snapshot")
        write_payload(path, payload)
        corrupt_file(path, "truncate")
        with pytest.raises(SnapshotError):
            read_payload(path)

    def test_truncated_header_detected(self, tmp_path, payload):
        path = str(tmp_path / "state.snapshot")
        write_payload(path, payload)
        with open(path, "r+b") as handle:
            handle.truncate(20)  # shorter than the fixed header
        with pytest.raises(SnapshotError):
            read_payload(path)

    def test_bit_flip_detected_by_checksum(self, tmp_path, payload):
        path = str(tmp_path / "state.snapshot")
        write_payload(path, payload)
        corrupt_file(path, "bitflip", seed=3)
        with pytest.raises(SnapshotError, match="checksum"):
            read_payload(path)

    def test_bad_magic_detected(self, tmp_path, payload):
        path = str(tmp_path / "state.snapshot")
        write_payload(path, payload)
        with open(path, "r+b") as handle:
            handle.write(b"NOTSNAPS")
        with pytest.raises(SnapshotError, match="magic"):
            read_payload(path)

    def test_version_mismatch_detected(self, tmp_path, payload):
        path = str(tmp_path / "state.snapshot")
        write_payload(path, payload)
        with open(path, "r+b") as handle:
            handle.seek(len(MAGIC))
            handle.write(struct.pack("<I", VERSION + 1))
        with pytest.raises(SnapshotError, match="version"):
            read_payload(path)


class TestSessionSnapshots:
    def test_round_trip_answers_byte_identical(self, tmp_path):
        data = generate_dataset("ANTI", 300, 3, seed=11)
        spec = RatioVector.uniform(0.3, 2.1, 3)
        session = DatasetSession(data)
        want = session.run(ratios=spec)
        path = str(tmp_path / "session.snapshot")
        session.save_snapshot(path, extra={"last_seq": 4})
        restored, extra = DatasetSession.load_snapshot(path)
        assert extra == {"last_seq": 4}
        assert restored.num_points == session.num_points
        assert restored.generation == session.generation
        got = restored.run(ratios=spec)
        np.testing.assert_array_equal(got.indices, want.indices)
        assert got.points.tobytes() == want.points.tobytes()

    def test_snapshot_preserves_cached_indexes(self, tmp_path):
        data = generate_dataset("INDE", 400, 3, seed=2)
        spec = RatioVector.uniform(0.4, 1.8, 3)
        session = DatasetSession(data)
        session.run(ratios=spec, method="quad")
        builds_before = session.stats.index_builds
        path = str(tmp_path / "session.snapshot")
        session.save_snapshot(path)
        restored, _ = DatasetSession.load_snapshot(path)
        # The warm restart reuses the pickled index: no rebuild on query.
        restored.run(ratios=spec, method="quad")
        assert restored.stats.index_builds == builds_before

    def test_wrong_kind_rejected(self, tmp_path):
        path = str(tmp_path / "other.snapshot")
        write_payload(path, {"kind": "something-else"})
        with pytest.raises(SnapshotError):
            DatasetSession.load_snapshot(path)

    def test_state_version_mismatch_rejected(self, tmp_path):
        data = generate_dataset("CORR", 60, 2, seed=0)
        session = DatasetSession(data)
        path = str(tmp_path / "session.snapshot")
        payload = {
            "kind": "repro-dataset-session",
            "state_version": DatasetSession.SNAPSHOT_STATE_VERSION + 1,
            "session": session,
            "extra": {},
        }
        write_payload(path, payload)
        with pytest.raises(SnapshotError, match="state version"):
            DatasetSession.load_snapshot(path)


class TestArenaPickle:
    def test_pickle_trims_headroom(self):
        arena = GrowableArena(np.zeros((0, 3)))
        for chunk in range(6):
            arena.append(np.full((10, 3), float(chunk)))
        clone = pickle.loads(pickle.dumps(arena))
        np.testing.assert_array_equal(clone.view, arena.view)
        assert clone.grows == arena.grows
        # The restored capacity is the valid prefix, not the grown buffer.
        assert clone.capacity <= arena.capacity
        clone.append(np.ones((5, 3)))
        assert clone.view.shape[0] == arena.view.shape[0] + 5
