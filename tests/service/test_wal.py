"""Write-ahead-log framing: append order, torn tails, corrupt records."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.service.wal import WriteAheadLog


def _record(seq: int) -> dict:
    return {
        "seq": seq,
        "insert_points": np.full((2, 3), float(seq)),
        "insert_gids": np.array([seq * 2, seq * 2 + 1], dtype=np.intp),
        "delete_gids": np.empty(0, dtype=np.intp),
    }


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(str(tmp_path / "shard.wal"))
    yield log
    log.close()


class TestWriteAheadLog:
    def test_missing_file_replays_empty(self, wal):
        assert wal.records() == []

    def test_append_then_replay_in_order(self, wal):
        for seq in (1, 2, 3):
            wal.append(_record(seq))
        got = wal.records()
        assert [r["seq"] for r in got] == [1, 2, 3]
        np.testing.assert_array_equal(
            got[1]["insert_points"], np.full((2, 3), 2.0)
        )

    def test_append_survives_interleaved_replay(self, wal):
        wal.append(_record(1))
        assert [r["seq"] for r in wal.records()] == [1]
        wal.append(_record(2))
        assert [r["seq"] for r in wal.records()] == [1, 2]

    def test_torn_tail_discarded_with_warning(self, wal, caplog):
        wal.append(_record(1))
        wal.append(_record(2))
        wal.close()
        with open(wal.path, "r+b") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            handle.truncate(size - 7)  # crash mid-append of record 2
        with caplog.at_level(logging.WARNING):
            got = wal.records()
        assert [r["seq"] for r in got] == [1]
        assert "discarding the tail" in caplog.text

    def test_torn_header_discarded(self, wal):
        wal.append(_record(1))
        wal.close()
        with open(wal.path, "ab") as handle:
            handle.write(b"WALR\x01")  # header cut short by a crash
        assert [r["seq"] for r in wal.records()] == [1]

    def test_corrupt_record_stops_replay(self, wal, caplog):
        import os

        wal.append(_record(1))
        first_end = os.path.getsize(wal.path)
        wal.append(_record(2))
        wal.append(_record(3))
        wal.close()
        with open(wal.path, "rb") as handle:
            raw = bytearray(handle.read())
        # Flip a payload bit inside the *second* record (past its 16-byte
        # header): replay must keep record 1 and refuse to order anything
        # at or after the damage.
        raw[first_end + 16 + 2] ^= 0x10
        with open(wal.path, "wb") as handle:
            handle.write(raw)
        with caplog.at_level(logging.WARNING):
            got = wal.records()
        assert [r["seq"] for r in got] == [1]
        assert "torn or corrupt" in caplog.text

    def test_foreign_bytes_rejected_by_magic(self, wal):
        with open(wal.path, "wb") as handle:
            handle.write(b"not a wal file at all, much longer than a header")
        assert wal.records() == []
