"""Test package marker (prevents basename collisions during collection)."""
