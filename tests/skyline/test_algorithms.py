"""Tests for the four skyline algorithms and the dispatcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import generate_dataset
from repro.errors import AlgorithmNotSupportedError, InvalidDatasetError
from repro.skyline.api import skyline, skyline_indices
from repro.skyline.bnl import skyline_bnl_indices
from repro.skyline.divide_conquer import skyline_divide_conquer_indices
from repro.skyline.dominance import dominates
from repro.skyline.sfs import skyline_sfs_indices
from repro.skyline.sweep2d import skyline_sweep_2d_indices

ALL_METHODS = ["bnl", "sfs", "divide_conquer"]


def brute_force_skyline(data: np.ndarray) -> list:
    """Reference implementation: direct application of the definition."""
    result = []
    for i in range(data.shape[0]):
        if not any(
            dominates(data[j], data[i]) for j in range(data.shape[0]) if j != i
        ):
            result.append(i)
    return result


class TestAgainstBruteForce:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("dimensions", [2, 3, 4])
    def test_matches_brute_force(self, method, dimensions, distribution):
        data = generate_dataset(distribution, 80, dimensions, seed=2)
        expected = brute_force_skyline(data)
        assert skyline_indices(data, method=method).tolist() == expected

    def test_sweep2d_matches_brute_force(self, distribution):
        data = generate_dataset(distribution, 120, 2, seed=3)
        assert skyline_sweep_2d_indices(data).tolist() == brute_force_skyline(data)


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("dimensions", [2, 3, 5])
    def test_all_methods_identical(self, dimensions):
        data = generate_dataset("anti", 200, dimensions, seed=7)
        reference = skyline_bnl_indices(data).tolist()
        assert skyline_sfs_indices(data).tolist() == reference
        assert skyline_divide_conquer_indices(data).tolist() == reference
        if dimensions == 2:
            assert skyline_sweep_2d_indices(data).tolist() == reference


class TestEdgeCases:
    @pytest.mark.parametrize("method", ALL_METHODS + ["sweep2d", "auto"])
    def test_empty_dataset(self, method):
        assert skyline_indices(np.empty((0, 2)), method=method).size == 0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_single_point(self, method):
        assert skyline_indices([[1.0, 2.0, 3.0]], method=method).tolist() == [0]

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_duplicates_all_kept(self, method):
        data = np.array([[1.0, 2.0], [1.0, 2.0], [0.5, 3.0], [2.0, 2.5]])
        assert skyline_indices(data, method=method).tolist() == [0, 1, 2]

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_identical_points_everywhere(self, method):
        data = np.ones((10, 3))
        assert skyline_indices(data, method=method).tolist() == list(range(10))

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_totally_ordered_chain(self, method):
        data = np.array([[float(i), float(i)] for i in range(10)])
        assert skyline_indices(data, method=method).tolist() == [0]

    def test_sweep2d_rejects_higher_dimensions(self):
        with pytest.raises(InvalidDatasetError):
            skyline_sweep_2d_indices(np.ones((3, 3)))

    def test_unknown_method(self):
        with pytest.raises(AlgorithmNotSupportedError):
            skyline_indices(np.ones((3, 2)), method="bogus")

    def test_auto_dispatch(self):
        data2 = generate_dataset("inde", 50, 2, seed=0)
        data4 = generate_dataset("inde", 50, 4, seed=0)
        assert skyline_indices(data2).tolist() == skyline_bnl_indices(data2).tolist()
        assert skyline_indices(data4).tolist() == skyline_bnl_indices(data4).tolist()

    def test_skyline_returns_rows(self):
        data = generate_dataset("corr", 40, 3, seed=1)
        rows = skyline(data)
        np.testing.assert_allclose(rows, data[skyline_indices(data)])

    def test_constant_last_attribute_divide_conquer(self):
        """Degenerate split handling: the last attribute is constant."""
        rng = np.random.default_rng(0)
        data = np.column_stack([rng.random(200), rng.random(200), np.ones(200)])
        expected = brute_force_skyline(data)
        assert skyline_divide_conquer_indices(data).tolist() == expected

    def test_large_input_divide_conquer_recursion(self):
        """Inputs above the recursion cutoff exercise the divide step."""
        data = generate_dataset("anti", 500, 3, seed=11)
        assert (
            skyline_divide_conquer_indices(data).tolist()
            == skyline_sfs_indices(data).tolist()
        )
