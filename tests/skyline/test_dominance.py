"""Tests for the Pareto-dominance helpers of the skyline substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DimensionMismatchError
from repro.skyline.dominance import (
    dominance_count,
    dominates,
    dominates_or_equal,
    is_skyline_point,
)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert dominates([1.0, 2.0], [1.0, 3.0])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1.0, 2.0], [1.0, 2.0])

    def test_incomparable_points(self):
        assert not dominates([1.0, 3.0], [2.0, 1.0])
        assert not dominates([2.0, 1.0], [1.0, 3.0])

    def test_dominates_or_equal_is_reflexive(self):
        assert dominates_or_equal([1.0, 2.0], [1.0, 2.0])

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            dominates([1.0], [1.0, 2.0])


class TestDominanceCount:
    def test_counts_only_strict_dominators(self):
        points = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [3.0, 0.5]])
        assert dominance_count(points, [2.5, 2.5]) == 2
        assert dominance_count(points, [1.0, 1.0]) == 0

    def test_empty_dataset(self):
        assert dominance_count(np.empty((0, 2)), [1.0, 1.0]) == 0

    def test_is_skyline_point(self):
        points = np.array([[1.0, 3.0], [3.0, 1.0]])
        assert is_skyline_point(points, [2.0, 2.0])
        assert not is_skyline_point(points, [4.0, 4.0])


coords = st.lists(
    st.floats(min_value=0, max_value=10, allow_nan=False), min_size=3, max_size=3
)


@given(a=coords, b=coords, c=coords)
@settings(max_examples=100, deadline=None)
def test_dominance_is_a_strict_partial_order(a, b, c):
    """Irreflexivity, asymmetry, and transitivity of Pareto dominance."""
    assert not dominates(a, a)
    if dominates(a, b):
        assert not dominates(b, a)
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)
