"""Tests for incremental skyline maintenance (repro.skyline.incremental)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, InvalidDatasetError
from repro.skyline import incremental as inc
from repro.skyline.api import skyline_indices


def membership(data, skyline_idx):
    mask = np.zeros(data.shape[0], dtype=bool)
    mask[skyline_idx] = True
    return mask


class TestRemapAfterDelete:
    def test_identity_without_deletes(self):
        remap = inc.remap_after_delete(5, np.empty(0, dtype=np.intp))
        assert remap.tolist() == [0, 1, 2, 3, 4]

    def test_deleted_rows_map_to_minus_one(self):
        remap = inc.remap_after_delete(6, np.array([1, 4]))
        assert remap.tolist() == [0, -1, 1, 2, -1, 3]

    def test_validate_rejects_out_of_range_and_duplicates(self):
        with pytest.raises(InvalidDatasetError):
            inc.validate_deletes(3, [3])
        with pytest.raises(InvalidDatasetError):
            inc.validate_deletes(3, [-1])
        with pytest.raises(InvalidDatasetError):
            inc.validate_deletes(3, [1, 1])


class TestInsertUpdate:
    def test_dominated_arrival_is_buffered(self):
        data = np.array([[1.0, 6.0], [4.0, 4.0], [9.0, 9.0]])
        out, added, demoted = inc.insert_update(
            data, membership(data[:2], [0, 1]), 1
        )
        assert not out[2]
        assert added.size == 0 and demoted.size == 0

    def test_arrival_demotes_dominated_member(self):
        data = np.array([[4.0, 4.0], [6.0, 1.0], [3.0, 3.0]])
        out, added, demoted = inc.insert_update(
            data, np.array([True, True, False]), 1
        )
        assert out.tolist() == [False, True, True]
        assert added.tolist() == [2]
        assert demoted.tolist() == [0]

    def test_intra_batch_dominance_resolved(self):
        data = np.array([[9.0, 9.0], [2.0, 2.0], [3.0, 3.0]])
        out, added, _ = inc.insert_update(data, np.array([True, False, False]), 2)
        # The second arrival is dominated by the first; the prefix demotes.
        assert added.tolist() == [1]
        assert out.tolist() == [False, True, False]

    def test_duplicates_all_survive(self):
        data = np.array([[2.0, 2.0], [2.0, 2.0]])
        out, added, demoted = inc.insert_update(data, np.array([True, False]), 1)
        assert out.tolist() == [True, True]
        assert demoted.size == 0


class TestDeleteUpdate:
    def test_deleting_buffered_point_changes_nothing(self):
        data = np.array([[1.0, 1.0], [5.0, 5.0], [2.0, 9.0]])
        kept_sky, promoted = inc.delete_update(
            data, np.array([True, False, True]), np.array([1])
        )
        assert kept_sky.tolist() == [True, True]
        assert promoted.size == 0

    def test_promotion_chain_only_exposes_top(self):
        # s > y > x (dominance chain); deleting s promotes y, not x.
        data = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        kept_sky, promoted = inc.delete_update(
            data, np.array([True, False, False]), np.array([0])
        )
        assert kept_sky.tolist() == [True, False]
        assert promoted.tolist() == [0]

    def test_shadow_survivor_promoted_when_unblocked(self):
        data = np.array([[1.0, 3.0], [4.0, 1.5], [2.0, 4.0]])
        # 0 and 1 are skyline, 2 is dominated by 0 only.  Deleting 0
        # promotes 2 (1 does not dominate it).
        kept_sky, promoted = inc.delete_update(
            data, np.array([True, True, False]), np.array([0])
        )
        assert kept_sky.tolist() == [True, True]
        assert promoted.tolist() == [1]

    def test_shadow_survivor_blocked_by_remaining_skyline(self):
        data = np.array([[1.0, 3.0], [1.5, 3.5], [2.0, 4.0]])
        # 0 is skyline; both others are dominated by it AND by each other's
        # chain; deleting 0 exposes only 1 (it dominates 2).
        kept_sky, promoted = inc.delete_update(
            data, np.array([True, False, False]), np.array([0])
        )
        assert kept_sky.tolist() == [True, False]
        assert promoted.tolist() == [0]


class TestApplyUpdatesFuzz:
    @pytest.mark.parametrize("dims", [2, 3, 4])
    def test_matches_full_recompute(self, dims):
        rng = np.random.default_rng(dims)
        for trial in range(40):
            n = int(rng.integers(0, 50))
            data = rng.integers(0, 6, size=(n, dims)).astype(float)
            sky = skyline_indices(data)
            num_deletes = int(rng.integers(0, n + 1)) if n else 0
            deletes = (
                rng.choice(n, size=num_deletes, replace=False)
                if num_deletes
                else np.empty(0, dtype=np.intp)
            )
            num_inserts = int(rng.integers(0, 12))
            inserts = (
                rng.integers(0, 6, size=(num_inserts, dims)).astype(float)
                if num_inserts
                else None
            )
            new_data, delta = inc.apply_updates(data, sky, inserts, deletes)
            expected_data = np.delete(data, np.unique(deletes), axis=0)
            if num_inserts:
                expected_data = (
                    np.vstack([expected_data, inserts])
                    if expected_data.size
                    else inserts
                )
            assert np.array_equal(new_data, np.asarray(expected_data))
            assert np.array_equal(
                np.flatnonzero(delta.is_skyline), skyline_indices(new_data)
            ), f"trial {trial}"

    def test_diff_is_pure_membership_diff(self):
        # A point promoted by the delete and demoted again by an arrival in
        # the same batch must appear in neither added nor removed_old.
        data = np.array([[1.0, 1.0], [2.0, 2.0], [9.0, 9.0]])
        sky = skyline_indices(data)  # [0]
        new_data, delta = inc.apply_updates(
            data, sky, np.array([[1.5, 1.5]]), np.array([0])
        )
        # Point (2,2) was transiently promoted, then demoted by (1.5, 1.5).
        assert np.flatnonzero(delta.is_skyline).tolist() == [2]
        assert delta.added.tolist() == [2]
        assert delta.removed_old.tolist() == [0]

    def test_dimension_mismatch_rejected(self):
        data = np.ones((3, 2))
        with pytest.raises(DimensionMismatchError):
            inc.apply_updates(data, skyline_indices(data), np.ones((1, 3)), None)

    def test_empty_dataset_insert(self):
        data = np.empty((0, 3))
        new_data, delta = inc.apply_updates(
            data, np.empty(0, dtype=np.intp), np.array([[1.0, 2.0, 3.0]]), None
        )
        assert new_data.shape == (1, 3)
        assert delta.added.tolist() == [0]

    def test_delete_everything(self):
        data = np.array([[1.0, 2.0], [2.0, 1.0]])
        new_data, delta = inc.apply_updates(
            data, skyline_indices(data), None, np.array([0, 1])
        )
        assert new_data.shape == (0, 2)
        assert delta.is_skyline.size == 0
        assert delta.removed_old.tolist() == [0, 1]
