"""Parity and unit tests for the broadcast dominance-kernel layer.

The vectorised hot paths (block-SFS, block-BNL, the divide-and-conquer
merge, the presorted baseline) must return indices byte-identical to the
straightforward point-at-a-time formulations on every distribution,
including datasets with exact duplicates and single-attribute ties.  The
reference implementations below mirror the seed code paths.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.baseline import eclipse_baseline_indices
from repro.core.dominance import eclipse_dominance_matrix
from repro.core.transform import eclipse_transform_indices
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.perf.blocking import (
    GrowableBuffer,
    iter_blocks,
    memory_cap_bytes,
    resolve_block_size,
)
from repro.skyline.api import skyline_indices
from repro.skyline.kernels import (
    block_sfs_indices,
    dominated_mask,
    dominates_matrix,
    monotone_sort_order,
)

DISTRIBUTIONS = ("corr", "inde", "anti")
RATIO = (0.36, 2.75)


# ----------------------------------------------------------------------
# Reference (seed-style) implementations
# ----------------------------------------------------------------------
def naive_dominated_mask(candidates: np.ndarray, dominators: np.ndarray) -> np.ndarray:
    mask = np.zeros(candidates.shape[0], dtype=bool)
    for i in range(candidates.shape[0]):
        c = candidates[i]
        le = np.all(dominators <= c, axis=1)
        lt = np.any(dominators < c, axis=1)
        mask[i] = bool(np.any(le & lt))
    return mask


def naive_skyline_indices(data: np.ndarray) -> np.ndarray:
    """Quadratic reference skyline (minimisation, strict dominance)."""
    keep = ~naive_dominated_mask(data, data)
    return np.flatnonzero(keep).astype(np.intp)


def naive_eclipse_indices(data: np.ndarray, ratios: RatioVector) -> np.ndarray:
    """Seed BASE: per-point corner-score dominance loop."""
    corner_scores = data @ ratios.corner_weight_vectors().T
    eclipse = []
    for i in range(data.shape[0]):
        le = np.all(corner_scores <= corner_scores[i], axis=1)
        lt = np.any(corner_scores < corner_scores[i], axis=1)
        dominated_by = le & lt
        dominated_by[i] = False
        if not dominated_by.any():
            eclipse.append(i)
    return np.array(eclipse, dtype=np.intp)


def dataset_with_ties(distribution: str, n: int, d: int, seed: int) -> np.ndarray:
    """Generated data with injected exact duplicates and per-column ties."""
    rng = np.random.default_rng(seed)
    data = generate_dataset(distribution, n, d, seed=seed)
    if n >= 8:
        # Exact duplicates: copy a handful of rows over other rows.
        src = rng.integers(0, n, size=n // 8)
        dst = rng.integers(0, n, size=n // 8)
        data[dst] = data[src]
        # Single-attribute ties: quantise one column coarsely.
        col = int(rng.integers(0, d))
        data[:, col] = np.round(data[:, col], 1)
    return data


# ----------------------------------------------------------------------
# Skyline substrate parity
# ----------------------------------------------------------------------
class TestSkylineSubstrateParity:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("d", [2, 3, 4, 6])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_substrates_match_naive(self, distribution, d, seed):
        data = dataset_with_ties(distribution, 200, d, seed=seed)
        expected = naive_skyline_indices(data).tolist()
        methods = ["bnl", "sfs", "divide_conquer", "auto"]
        if d == 2:
            methods.append("sweep2d")
        for method in methods:
            got = skyline_indices(data, method=method)
            assert got.tolist() == expected, f"{method} diverged"
            collapsed = skyline_indices(data, method=method, collapse_duplicates=True)
            assert collapsed.tolist() == expected, f"{method}+collapse diverged"

    @pytest.mark.parametrize("seed", [3, 4])
    def test_large_randomised_cross_substrate(self, seed):
        data = dataset_with_ties("anti", 3000, 4, seed=seed)
        reference = skyline_indices(data, method="bnl").tolist()
        for method in ("sfs", "divide_conquer", "auto"):
            assert skyline_indices(data, method=method).tolist() == reference

    def test_all_duplicates_retained(self):
        data = np.tile([[1.0, 2.0, 3.0]], (7, 1))
        for method in ("bnl", "sfs", "divide_conquer", "auto"):
            assert skyline_indices(data, method=method).tolist() == list(range(7))
            assert (
                skyline_indices(
                    data, method=method, collapse_duplicates=True
                ).tolist()
                == list(range(7))
            )


# ----------------------------------------------------------------------
# Eclipse method parity
# ----------------------------------------------------------------------
class TestEclipseMethodParity:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("d", [2, 3, 4])
    @pytest.mark.parametrize("seed", [5, 6])
    def test_base_and_tran_match_naive(self, distribution, d, seed):
        data = dataset_with_ties(distribution, 180, d, seed=seed)
        ratios = RatioVector.uniform(*RATIO, d)
        expected = naive_eclipse_indices(data, ratios).tolist()
        assert eclipse_baseline_indices(data, ratios).tolist() == expected
        assert eclipse_transform_indices(data, ratios).tolist() == expected
        assert (
            eclipse_transform_indices(data, ratios, collapse_duplicates=True).tolist()
            == expected
        )
        for skyline_method in ("bnl", "sfs", "divide_conquer"):
            got = eclipse_transform_indices(data, ratios, skyline_method=skyline_method)
            assert got.tolist() == expected, f"tran/{skyline_method} diverged"

    def test_base_tran_parity_large(self):
        data = dataset_with_ties("anti", 4000, 4, seed=9)
        ratios = RatioVector.uniform(*RATIO, 4)
        base = eclipse_baseline_indices(data, ratios)
        tran = eclipse_transform_indices(data, ratios)
        assert np.array_equal(base, tran)

    def test_dominance_matrix_matches_naive(self):
        data = dataset_with_ties("inde", 60, 3, seed=11)
        ratios = RatioVector.uniform(*RATIO, 3)
        matrix = eclipse_dominance_matrix(data, ratios)
        corner_scores = data @ ratios.corner_weight_vectors().T
        for i in range(60):
            le = np.all(corner_scores[i] <= corner_scores, axis=1)
            lt = np.any(corner_scores[i] < corner_scores, axis=1)
            expected = le & lt
            expected[i] = False
            assert np.array_equal(matrix[i], expected)


# ----------------------------------------------------------------------
# Kernel unit tests
# ----------------------------------------------------------------------
class TestDominatedMask:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_on_random_inputs(self, seed):
        rng = np.random.default_rng(seed)
        cand = rng.random((rng.integers(1, 300), rng.integers(1, 6)))
        dom = rng.random((rng.integers(1, 300), cand.shape[1]))
        assert np.array_equal(
            dominated_mask(cand, dom), naive_dominated_mask(cand, dom)
        )

    def test_empty_inputs(self):
        empty = np.empty((0, 3))
        rows = np.ones((4, 3))
        assert dominated_mask(empty, rows).shape == (0,)
        assert not dominated_mask(rows, empty).any()

    def test_self_and_duplicates_never_dominate(self):
        rows = np.array([[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]])
        assert not dominated_mask(rows[:2], rows[:2]).any()
        assert dominated_mask(rows, rows).tolist() == [False, False, True]

    def test_sum_rounding_tie_is_decided_exactly(self):
        # The strictness test rides on the row sum; these rows differ only by
        # a coordinate too small to register in the computed sums, forcing
        # the exact elementwise fallback.
        q = np.array([[2e-30, 1.0]])
        p = np.array([[1e-30, 1.0]])
        assert p.sum() == q.sum()  # rounding collapses the sums
        assert dominated_mask(q, p).tolist() == [True]
        assert not dominated_mask(p, q).any()

    def test_memory_cap_does_not_change_results(self):
        rng = np.random.default_rng(42)
        cand = rng.random((500, 5))
        dom = rng.random((400, 5))
        expected = naive_dominated_mask(cand, dom)
        # A tiny cap forces single-digit blocks; results must be identical.
        assert np.array_equal(dominated_mask(cand, dom, memory_cap=256), expected)

    def test_precomputed_sums_accepted(self):
        rng = np.random.default_rng(7)
        cand = rng.random((50, 4))
        dom = rng.random((60, 4))
        got = dominated_mask(
            cand, dom, cand_sums=cand.sum(axis=1), dom_sums=dom.sum(axis=1)
        )
        assert np.array_equal(got, naive_dominated_mask(cand, dom))


class TestDominatesMatrix:
    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(3)
        rows = rng.random((40, 3))
        others = rng.random((30, 3))
        matrix = dominates_matrix(rows, others)
        for i in range(40):
            le = np.all(rows[i] <= others, axis=1)
            lt = np.any(rows[i] < others, axis=1)
            assert np.array_equal(matrix[i], le & lt)

    def test_empty(self):
        assert dominates_matrix(np.empty((0, 2)), np.ones((3, 2))).shape == (0, 3)
        assert dominates_matrix(np.ones((3, 2)), np.empty((0, 2))).shape == (3, 0)


class TestBlockSfs:
    @pytest.mark.parametrize("block_size", [1, 3, 64, 512])
    def test_block_size_invariant(self, block_size):
        data = dataset_with_ties("anti", 150, 3, seed=20)
        expected = naive_skyline_indices(data).tolist()
        assert block_sfs_indices(data, block_size=block_size).tolist() == expected

    def test_monotone_sort_order_is_monotone(self):
        rng = np.random.default_rng(8)
        data = rng.random((100, 4))
        order = monotone_sort_order(data)
        sums = data.sum(axis=1)[order]
        assert np.all(np.diff(sums) >= 0)

    def test_cross_block_float_sum_tie(self):
        # Regression: [1e16, 0.0] strictly dominates [1e16, 1.0] but both
        # have the same *computed* sum (fl(1e16 + 1.0) == 1e16).  The filler
        # rows push the dominated row to the end of the first 512-block and
        # its dominator into the next block; only the lexicographic
        # tie-break in the sort keeps the dominator ahead so the pair is
        # ever compared.
        data = np.array(
            [[float(i), 1e15] for i in range(511)] + [[1e16, 1.0], [1e16, 0.0]]
        )
        expected = naive_skyline_indices(data).tolist()
        assert 511 not in expected
        for method in ("sfs", "bnl", "divide_conquer", "auto"):
            assert skyline_indices(data, method=method).tolist() == expected

    def test_cross_block_float_sum_tie_baseline_parity(self):
        # Same trap in corner-score space: BASE's prefix filter must still
        # include an equal-computed-sum dominator from a later block.
        base = np.array(
            [[float(i), 1e15] for i in range(511)] + [[1e16, 1.0], [1e16, 0.0]]
        )
        ratios = RatioVector.uniform(1.0, 1.0, 2)
        expected = naive_eclipse_indices(base, ratios).tolist()
        assert eclipse_baseline_indices(base, ratios).tolist() == expected
        assert eclipse_transform_indices(base, ratios).tolist() == expected


class TestBlockingHelpers:
    def test_resolve_block_size_respects_cap(self):
        # 2 scratch bytes per (dominator, dim) cell per candidate.
        assert resolve_block_size(100, 5, memory_cap=100 * 5 * 2 * 7) == 7
        assert resolve_block_size(100, 5, memory_cap=1) == 1
        assert resolve_block_size(0, 0, memory_cap=1024) >= 1

    def test_resolve_block_size_honours_preferred(self):
        assert resolve_block_size(1, 1, memory_cap=1 << 30, preferred=9) == 9

    def test_memory_cap_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_MEMORY_CAP_MB", "2")
        assert memory_cap_bytes() == 2 * 1024 * 1024
        assert memory_cap_bytes(123) == 123
        with pytest.raises(ValueError):
            memory_cap_bytes(0)

    def test_memory_cap_env_bogus_warns_and_falls_back(self, monkeypatch):
        from repro.perf.blocking import DEFAULT_MEMORY_CAP_BYTES

        monkeypatch.setenv("REPRO_KERNEL_MEMORY_CAP_MB", "bogus")
        with pytest.warns(RuntimeWarning, match="unparseable"):
            assert memory_cap_bytes() == DEFAULT_MEMORY_CAP_BYTES
        monkeypatch.setenv("REPRO_KERNEL_MEMORY_CAP_MB", "-3")
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert memory_cap_bytes() == DEFAULT_MEMORY_CAP_BYTES
        # An explicit cap bypasses the environment entirely: no warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert memory_cap_bytes(123) == 123

    def test_iter_blocks_covers_range(self):
        spans = list(iter_blocks(10, 3))
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert list(iter_blocks(0, 4)) == []
        with pytest.raises(ValueError):
            list(iter_blocks(5, 0))

    def test_growable_buffer_append_and_keep(self):
        buf = GrowableBuffer(2, capacity=1, track_sums=True)
        rows = np.arange(10, dtype=float).reshape(5, 2)
        buf.append_batch(rows, np.arange(5))
        assert len(buf) == 5
        assert np.array_equal(buf.rows, rows)
        assert np.array_equal(buf.sums, rows.sum(axis=1))
        buf.keep(np.array([True, False, True, False, True]))
        assert buf.indices.tolist() == [0, 2, 4]
        assert np.array_equal(buf.sums, rows[[0, 2, 4]].sum(axis=1))
        buf.append_batch(rows[:1], np.array([9]), sums=rows[:1].sum(axis=1))
        assert buf.indices.tolist() == [0, 2, 4, 9]

    def test_growable_buffer_without_sums(self):
        buf = GrowableBuffer(3)
        assert buf.sums is None
        buf.append_batch(np.ones((2, 3)), np.array([1, 2]))
        assert buf.sums is None
        assert len(buf) == 2

    def test_growable_buffer_keep_interleaved_mask(self):
        # The compaction writes the gathered rows back into the same
        # buffer; an interleaved mask makes source and destination ranges
        # overlap, which is exactly the aliasing the explicit copy guards.
        rows = np.arange(200, dtype=float).reshape(100, 2)
        indices = np.arange(100, 200)
        buf = GrowableBuffer(2, capacity=4, track_sums=True)
        buf.append_batch(rows, indices)
        mask = np.zeros(100, dtype=bool)
        mask[1::2] = True
        mask[0] = True  # uneven stride: kept run overlaps dropped run
        buf.keep(mask)
        assert np.array_equal(buf.rows, rows[mask])
        assert np.array_equal(buf.indices, indices[mask])
        assert np.array_equal(buf.sums, rows[mask].sum(axis=1))
        # Compact again down to a sparse tail-heavy subset.
        second = np.zeros(len(buf), dtype=bool)
        second[-3:] = True
        expected = rows[mask][second]
        buf.keep(second)
        assert np.array_equal(buf.rows, expected)
        assert len(buf) == 3
