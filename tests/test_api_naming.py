"""Tests for the repro.skyline shadowing fix and the top-level exports."""

from __future__ import annotations

import importlib
import types

import numpy as np
import pytest

import repro


@pytest.fixture
def hotels() -> np.ndarray:
    return np.array([[1.0, 6.0], [4.0, 4.0], [6.0, 1.0], [8.0, 5.0]])


class TestSkylineShadowingFix:
    def test_repro_skyline_is_the_subpackage(self):
        assert isinstance(repro.skyline, types.ModuleType)
        assert repro.skyline.__name__ == "repro.skyline"

    def test_deep_imports_work(self):
        # The seed bug: `import repro.skyline.api as x` failed because the
        # top-level package rebound the name `skyline` to the function.
        module = importlib.import_module("repro.skyline.api")
        assert hasattr(module, "skyline_indices")
        import repro.skyline.kernels as kernels  # the literal failing spelling

        assert hasattr(kernels, "dominated_mask")

    def test_skyline_query_is_the_function(self, hotels):
        assert callable(repro.skyline_query)
        assert repro.skyline_query(hotels).tolist() == [
            [1.0, 6.0],
            [4.0, 4.0],
            [6.0, 1.0],
        ]

    def test_old_spelling_still_callable_with_deprecation(self, hotels):
        with pytest.warns(DeprecationWarning, match="skyline_query"):
            result = repro.skyline(hotels)
        assert np.array_equal(result, repro.skyline_query(hotels))

    def test_subpackage_function_unaffected(self, hotels):
        from repro.skyline import skyline

        assert np.array_equal(skyline(hotels), repro.skyline_query(hotels))


class TestTopLevelExports:
    def test_session_layer_exported(self):
        assert repro.DatasetSession is not None
        assert repro.QueryPlan is not None
        assert callable(repro.plan_query)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
