"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestQueryCommand:
    def test_query_on_generated_data(self, capsys):
        exit_code = main(
            ["query", "--dataset", "INDE", "--n", "200", "-d", "3", "--low", "0.36", "--high", "2.75"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "eclipse query" in out
        assert "points returned" in out

    def test_query_methods(self, capsys):
        for method in ("baseline", "transform", "quad", "cutting"):
            assert main(
                ["query", "--dataset", "CORR", "--n", "100", "-d", "2", "--method", method]
            ) == 0

    def test_query_from_csv(self, tmp_path, capsys):
        path = tmp_path / "hotels.csv"
        path.write_text("distance,price\n1,6\n4,4\n6,1\n8,5\n")
        assert main(["query", "--input", str(path), "--low", "0.25", "--high", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 of 4 points returned" in out

    def test_query_degenerate_input_prints_clear_error(self, tmp_path, capsys):
        # Collinear points make the tree index builds raise; the CLI must
        # print the one-line error, not a traceback.
        path = tmp_path / "collinear.csv"
        path.write_text(
            "\n".join(f"{5.0 + i},{5.0 - i},{5.0 + 0.5 * i}" for i in range(40))
        )
        exit_code = main(
            ["query", "--input", str(path), "--method", "quad", "--low", "0.5", "--high", "2"]
        )
        assert exit_code == 1
        err = capsys.readouterr().err
        assert "coincident duplicate" in err
        assert "scan" in err


class TestGenerateCommand:
    def test_generate_writes_csv(self, tmp_path):
        output = tmp_path / "data.csv"
        assert main(
            ["generate", "--dataset", "ANTI", "--n", "50", "-d", "3", "--output", str(output)]
        ) == 0
        data = np.loadtxt(output, delimiter=",")
        assert data.shape == (50, 3)

    def test_generate_nba(self, tmp_path):
        output = tmp_path / "nba.csv"
        assert main(
            ["generate", "--dataset", "NBA", "--n", "100", "-d", "5", "--output", str(output)]
        ) == 0
        assert np.loadtxt(output, delimiter=",").shape == (100, 5)


class TestExperimentCommand:
    def test_table5(self, capsys):
        assert main(["experiment", "table5"]) == 0
        assert "Table V" in capsys.readouterr().out

    def test_table7(self, capsys):
        assert main(["experiment", "table7", "--trials", "2"]) == 0
        assert "Table VII" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "table99"]) == 1


class TestParser:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["query"])
        assert args.dataset == "INDE"
        assert args.low == pytest.approx(0.36)


class TestStreamCommand:
    def test_stream_reports_update_counters(self, capsys):
        exit_code = main(
            [
                "stream",
                "--dataset",
                "INDE",
                "--n",
                "400",
                "-d",
                "3",
                "--steps",
                "30",
                "--update-fraction",
                "0.3",
                "--seed",
                "1",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "# stream of 30 steps" in out
        assert "inserts_applied=" in out
        assert "inplace_updates=" in out
        assert "rebuilds_triggered=" in out

    def test_stream_explain_prints_plan(self, capsys):
        exit_code = main(
            [
                "stream",
                "--dataset",
                "CORR",
                "--n",
                "200",
                "-d",
                "2",
                "--steps",
                "10",
                "--explain",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "eclipse query plan" in out
        assert "# updates:" in out or "# stream of" in out

    def test_stream_empty_dataset_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert main(["stream", "--input", str(path)]) == 1


class TestArgumentValidation:
    """Bad sizes and steps exit with status 2 and a clear message."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["query", "--n", "0"],
            ["query", "--n", "-3"],
            ["query", "-d", "0"],
            ["batch", "--n", "-5", "--ratios", "0.5:1.5"],
            ["stream", "--steps", "0"],
            ["stream", "--steps", "-1"],
            ["stream", "--batch", "0"],
            ["stream", "--update-size", "-2"],
            ["stream", "--update-fraction", "1.5"],
            ["generate", "--n", "0", "--output", "/dev/null"],
            ["serve", "--n", "0"],
            ["serve", "--shards", "0"],
            ["serve", "--steps", "-4"],
        ],
    )
    def test_bad_arguments_exit_2(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "must" in err


class TestServeCommand:
    def test_serve_verifies_against_reference(self, capsys):
        exit_code = main(
            [
                "serve",
                "--dataset",
                "ANTI",
                "--n",
                "300",
                "-d",
                "3",
                "--shards",
                "2",
                "--steps",
                "10",
                "--seed",
                "3",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "# serve: 2 shards, 10 steps" in out
        assert "byte-identical" in out

    def test_serve_with_fault_injection(self, capsys):
        exit_code = main(
            [
                "serve",
                "--dataset",
                "INDE",
                "--n",
                "250",
                "-d",
                "3",
                "--shards",
                "2",
                "--steps",
                "10",
                "--update-fraction",
                "0.5",
                "--inject",
                "kill_every=2,kill_mode=after_apply,seed=7",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "# injected:" in out
        assert "kills_injected=" in out
        assert "byte-identical" in out

    def test_serve_no_verify_skips_reference(self, capsys):
        exit_code = main(
            [
                "serve",
                "--n",
                "150",
                "-d",
                "2",
                "--steps",
                "6",
                "--no-verify",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "verification: skipped" in out

    def test_serve_bad_inject_spec_exits_2(self, capsys):
        assert main(["serve", "--inject", "explode=1"]) == 2
        assert "known keys" in capsys.readouterr().err

    def test_serve_bad_kill_mode_rejected(self, capsys):
        exit_code = main(
            ["serve", "--n", "100", "--inject", "kill_every=2,kill_mode=nope"]
        )
        assert exit_code != 0


class TestServeNetworkMode:
    def test_busy_bind_address_exits_2_with_clear_message(self, capsys):
        import socket

        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            exit_code = main(
                [
                    "serve", "--listen", "127.0.0.1",
                    "--bind-port", str(port),
                    "--dataset", "INDE", "--n", "80", "-d", "3",
                ]
            )
        finally:
            blocker.close()
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot listen on" in captured.err
        assert "Traceback" not in captured.err

    def test_invalid_bind_address_exits_2(self, capsys):
        exit_code = main(
            [
                "serve", "--listen", "no.such.host.invalid.",
                "--bind-port", "7431",
                "--dataset", "INDE", "--n", "80", "-d", "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot listen on" in captured.err
        assert "Traceback" not in captured.err

    def test_recover_without_snapshot_dir_exits_2(self, capsys):
        exit_code = main(
            [
                "serve", "--listen", "127.0.0.1", "--bind-port", "0",
                "--recover", "--dataset", "INDE", "--n", "80",
            ]
        )
        assert exit_code == 2
        assert "--snapshot-dir" in capsys.readouterr().err

    def test_bad_max_connections_exits_2(self, capsys):
        exit_code = main(
            [
                "serve", "--listen", "127.0.0.1", "--bind-port", "0",
                "--max-connections", "0", "--dataset", "INDE", "--n", "80",
            ]
        )
        assert exit_code == 2


class TestClientCommand:
    @pytest.fixture()
    def server(self):
        from repro.data.generators import generate_dataset
        from repro.service.netserver import NetServerConfig, start_in_thread
        from repro.service.supervisor import EclipseService, ServiceConfig

        data = generate_dataset("INDE", 200, 3, seed=0)
        service = EclipseService(
            data,
            config=ServiceConfig(
                num_shards=2, backoff_base=0.01, backoff_cap=0.05
            ),
        )
        handle = start_in_thread(service, NetServerConfig(port=0))
        try:
            yield handle
        finally:
            handle.shutdown()
            service.close()

    def test_one_shot_query(self, server, capsys):
        exit_code = main(
            [
                "client", "--host", server.host, "--port", str(server.port),
                "--low", "0.3", "--high", "2.4", "-d", "3",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "points returned" in out
        assert f"via {server.host}:{server.port}" in out

    def test_health_probe(self, server, capsys):
        assert main(
            [
                "client", "--host", server.host, "--port", str(server.port),
                "--health",
            ]
        ) == 0
        assert "'status': 'ok'" in capsys.readouterr().out

    def test_listen_env_knob_supplies_address(self, server, capsys, monkeypatch):
        monkeypatch.setenv(
            "REPRO_SERVICE_LISTEN", f"{server.host}:{server.port}"
        )
        assert main(["client", "--health"]) == 0
        assert "'status': 'ok'" in capsys.readouterr().out

    def test_garbage_listen_env_warns_and_falls_back(self, server, monkeypatch):
        # The env knob is misconfigured: the CLI must warn (RuntimeWarning)
        # and fall back to the defaults rather than die — here the explicit
        # --host/--port still win, so the request succeeds.
        monkeypatch.setenv("REPRO_SERVICE_LISTEN", "not:a:valid:addr")
        with pytest.warns(RuntimeWarning, match="REPRO_SERVICE_LISTEN"):
            exit_code = main(
                [
                    "client", "--host", server.host,
                    "--port", str(server.port), "--health",
                ]
            )
        assert exit_code == 0

    def test_workload_against_external_server(self, server, capsys):
        exit_code = main(
            [
                "client", "--host", server.host, "--port", str(server.port),
                "--workload", "--dataset", "INDE", "--n", "200", "-d", "3",
                "--seed", "0", "--steps", "6", "--update-fraction", "0.3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0, captured.err
        assert "byte-identical" in captured.out

    def test_kill_without_spawn_exits_2(self, capsys):
        exit_code = main(
            ["client", "--kill-server-every", "3", "--dataset", "INDE"]
        )
        assert exit_code == 2
        assert "--spawn-server" in capsys.readouterr().err

    def test_connection_refused_prints_error_not_traceback(self, capsys):
        import socket

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        exit_code = main(
            [
                "client", "--host", "127.0.0.1", "--port", str(free_port),
                "--health", "--retries", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "failed after" in captured.err
